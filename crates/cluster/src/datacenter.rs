//! The data-center state: PM and VM tables, demand stepping, placement and
//! live migration.
//!
//! `DataCenter` is the single mutable world-state that every consolidation
//! policy (GLAP and the baselines) operates on through the same interface,
//! which guarantees the comparison uses identical mechanics: demands come
//! from a [`DemandSource`] (a workload trace), migrations are accounted with
//! the same duration/energy/degradation model, and SLA counters advance the
//! same way for all policies.
//!
//! PM state is stored struct-of-arrays (see [`PmStore`](crate::pm)) with a
//! CSR-style placement arena and a sorted active-set index: `pm(id)` hands
//! out a [`PmRef`] read handle, `active_pm_count` is O(1), and the
//! per-round scans (`step`'s SLA tick, `overloaded_pm_count`) visit only
//! active machines — sleeping PMs cost nothing per round.

use crate::ids::{PmId, VmId};
use crate::pm::{PmRef, PmSpec, PmStore, PowerState};
use crate::power::{MigrationModel, PowerModel};
use crate::resources::Resources;
use crate::topology::Topology;
use crate::vm::{Vm, VmProfile, VmSpec};
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
use glap_telemetry::{EventKind, Tracer};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Supplies per-VM utilization observations, one per simulated round.
///
/// Values are the fraction of the VM's *nominal* allocation in use per
/// resource, each component in `[0, 1]`. Implemented by the trace types in
/// the `glap-workload` crate.
pub trait DemandSource {
    /// Utilization-of-nominal for `vm` at `round`.
    fn demand(&mut self, vm: VmId, round: u64) -> Resources;
}

/// Blanket impl so closures can act as demand sources in tests.
impl<F> DemandSource for F
where
    F: FnMut(VmId, u64) -> Resources,
{
    fn demand(&mut self, vm: VmId, round: u64) -> Resources {
        self(vm, round)
    }
}

/// Static configuration of a simulated data center.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataCenterConfig {
    /// Number of physical machines.
    pub n_pms: usize,
    /// Hardware model of every (homogeneous) PM.
    pub pm_spec: PmSpec,
    /// Wall-clock seconds one simulated round represents (the paper: 120 s).
    pub round_seconds: f64,
    /// Live-migration cost model.
    pub migration: MigrationModel,
    /// Optional rack topology. When present, inter-rack migrations get a
    /// reduced bandwidth share (longer, costlier transfers) and switch
    /// power can be accounted per rack.
    pub topology: Option<Topology>,
}

impl DataCenterConfig {
    /// The paper's configuration for a given cluster size: ML110 G5
    /// servers, 2-minute rounds.
    pub fn paper(n_pms: usize) -> Self {
        DataCenterConfig {
            n_pms,
            pm_spec: PmSpec::HP_PROLIANT_ML110_G5,
            round_seconds: 120.0,
            migration: MigrationModel::default(),
            topology: None,
        }
    }

    /// Same, with a rack topology (the future-work extension).
    pub fn paper_with_topology(n_pms: usize, topology: Topology) -> Self {
        DataCenterConfig {
            topology: Some(topology),
            ..Self::paper(n_pms)
        }
    }
}

/// One completed live migration, with its full cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// Round in which the migration happened.
    pub round: u64,
    /// The migrated VM.
    pub vm: VmId,
    /// Source PM.
    pub from: PmId,
    /// Destination PM.
    pub to: PmId,
    /// Transfer duration in seconds.
    pub tau_s: f64,
    /// Energy overhead in joules (paper Eq. 3).
    pub energy_j: f64,
}

/// Why a migration was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationError {
    /// The VM is not currently placed on any PM.
    VmNotPlaced,
    /// Source and destination are the same PM.
    SamePm,
    /// The destination PM is sleeping.
    DestinationSleeping,
}

/// The full mutable simulation state.
#[derive(Debug, Clone)]
pub struct DataCenter {
    cfg: DataCenterConfig,
    power: PowerModel,
    pms: PmStore,
    vms: Vec<Vm>,
    round: u64,
    /// Migrations performed since the last [`DataCenter::take_migrations`].
    pending_migrations: Vec<MigrationRecord>,
    /// Lifetime migration counter.
    total_migrations: u64,
    /// Lifetime migration energy in joules.
    total_migration_energy_j: f64,
    /// Sleeping→active transitions since the last
    /// [`DataCenter::take_wake_ups`].
    pending_wake_ups: usize,
    /// Event tracer; the migrate/sleep/wake funnels below give every
    /// policy the same event vocabulary (off by default).
    tracer: Tracer,
    /// Event-driven learning-eligibility index (see
    /// [`DataCenter::refresh_eligibility`]).
    elig: EligibilityIndex,
}

/// Lazily maintained per-PM learning-eligibility flags.
///
/// The flag for PM `i` is exactly the scalar predicate the learning
/// phase always used — `is_active && utilization().cpu() <= threshold` —
/// but recomputed only for PMs whose inputs (power state, demand
/// aggregates) changed since the last refresh, driven by the
/// [`PmStore`] dirty queue. A full rebuild happens on first use, on a
/// threshold change, or after an explicit invalidation; everything else
/// is O(dirty), not O(n). Skipped PMs are provable no-ops: neither
/// their power state nor their aggregates changed, so the predicate
/// value cannot have changed either.
#[derive(Debug, Clone, Default)]
struct EligibilityIndex {
    threshold: f64,
    flags: Vec<bool>,
    valid: bool,
}

impl DataCenter {
    /// Creates a data center with `cfg.n_pms` active, empty PMs and no VMs.
    pub fn new(cfg: DataCenterConfig) -> Self {
        DataCenter {
            power: PowerModel::from_spec(&cfg.pm_spec),
            pms: PmStore::new(cfg.n_pms),
            cfg,
            vms: Vec::new(),
            round: 0,
            pending_migrations: Vec::new(),
            total_migrations: 0,
            total_migration_energy_j: 0.0,
            pending_wake_ups: 0,
            tracer: Tracer::off(),
            elig: EligibilityIndex::default(),
        }
    }

    /// Attaches an event tracer. All migrations, sleeps and wake-ups —
    /// regardless of which policy decided them — are emitted through
    /// this single funnel.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The static configuration.
    #[inline]
    pub fn config(&self) -> &DataCenterConfig {
        &self.cfg
    }

    /// The power model of the (homogeneous) PMs.
    #[inline]
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Current round number (count of completed [`DataCenter::step`]s).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Registers a new, unplaced VM and returns its id.
    pub fn add_vm(&mut self, spec: VmSpec) -> VmId {
        let id = VmId(self.vms.len() as u32);
        self.vms
            .push(Vm::new(id, spec, self.cfg.pm_spec.capacity()));
        id
    }

    /// Number of PMs.
    #[inline]
    pub fn n_pms(&self) -> usize {
        self.pms.len()
    }

    /// Number of VMs.
    #[inline]
    pub fn n_vms(&self) -> usize {
        self.vms.len()
    }

    /// Immutable PM access: a `Copy` handle over the SoA store.
    #[inline]
    pub fn pm(&self, id: PmId) -> PmRef<'_> {
        self.pms.pm(id)
    }

    /// Immutable VM access.
    #[inline]
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.index()]
    }

    /// Iterates over all PMs.
    pub fn pms(&self) -> impl Iterator<Item = PmRef<'_>> {
        (0..self.pms.len()).map(|i| self.pms.pm(PmId(i as u32)))
    }

    /// Collects the demand profiles of every VM hosted on `pm` into
    /// `buf` (cleared first). This is the demand-feed boundary for
    /// distributed protocol runtimes: a per-node driver calls it once
    /// per round and ships the result to the node, which otherwise
    /// never touches the data-center model.
    pub fn pm_profiles_into(&self, pm: PmId, buf: &mut Vec<VmProfile>) {
        buf.clear();
        for &vm in self.pm(pm).vms() {
            buf.push(self.vm(vm).profile());
        }
    }

    /// Iterates over all VMs.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.iter()
    }

    /// Ids of all active PMs, ascending — served from the maintained
    /// active-set index, so the cost is O(active), not O(n).
    pub fn active_pm_ids(&self) -> impl Iterator<Item = PmId> + '_ {
        self.pms.active_ids().iter().copied()
    }

    /// Count of active PMs — O(1) from the active-set index.
    #[inline]
    pub fn active_pm_count(&self) -> usize {
        self.pms.active_ids().len()
    }

    /// Count of overloaded PMs (aggregate demand at/over capacity in at
    /// least one resource). Scans only the active set: sleeping PMs host
    /// nothing and cannot be overloaded.
    pub fn overloaded_pm_count(&self) -> usize {
        self.pms
            .active_ids()
            .iter()
            .filter(|&&p| self.pms.pm(p).is_overloaded())
            .count()
    }

    /// Remaining capacity of a PM as a fraction vector (zero floor).
    pub fn free_capacity(&self, pm: PmId) -> Resources {
        (Resources::FULL - self.pm(pm).demand()).max(Resources::ZERO)
    }

    /// Removes a VM from the system (departure). Its slot is retained for
    /// stable ids and final SLA accounting. Returns `false` if the VM had
    /// already departed.
    pub fn remove_vm(&mut self, vm_id: VmId) -> bool {
        if self.vms[vm_id.index()].departed {
            return false;
        }
        if let Some(host) = self.vms[vm_id.index()].host {
            let (current, avg) = {
                let vm = &self.vms[vm_id.index()];
                (vm.current, vm.avg.value())
            };
            self.pms.detach(host, vm_id, current, avg);
        }
        let vm = &mut self.vms[vm_id.index()];
        vm.host = None;
        vm.departed = true;
        vm.current = Resources::ZERO;
        true
    }

    /// Places an unplaced VM on an active PM (initial allocation). Panics
    /// if the VM is already placed, departed, or the PM is sleeping —
    /// placement bugs should fail loudly.
    pub fn place(&mut self, vm_id: VmId, pm_id: PmId) {
        assert!(!self.vms[vm_id.index()].departed, "placing a departed VM");
        assert!(self.vms[vm_id.index()].host.is_none(), "VM already placed");
        assert!(self.pms.is_active(pm_id.index()), "placing on sleeping PM");
        let (current, avg) = {
            let vm = &self.vms[vm_id.index()];
            (vm.current, vm.avg.value())
        };
        self.pms.attach(pm_id, vm_id, current, avg);
        self.vms[vm_id.index()].host = Some(pm_id);
    }

    /// Uniform-random initial placement of all unplaced VMs over all PMs —
    /// the paper's starting condition ("at the beginning, the VMs are
    /// randomly allocated to the PMs"). The same RNG seed reproduces the
    /// same mapping, which the paper requires to be identical across the
    /// compared algorithms.
    pub fn random_placement<R: Rng>(&mut self, rng: &mut R) {
        let unplaced: Vec<VmId> = self
            .vms
            .iter()
            .filter(|v| v.host.is_none() && !v.departed)
            .map(|v| v.id)
            .collect();
        let active: Vec<PmId> = self.active_pm_ids().collect();
        assert!(!active.is_empty(), "no active PM to place on");
        for vm in unplaced {
            let pm = *active.choose(rng).expect("non-empty");
            self.place(vm, pm);
        }
    }

    /// Advances one simulated round: pulls a fresh demand observation for
    /// every placed VM, folds each VM's demand change into its host's
    /// cached aggregates in O(1), and advances SLA accounting over the
    /// active set only (sleeping PMs tick nothing, so skipping them is
    /// exact). No allocation and no rescan of the VM lists —
    /// `check_invariants` cross-checks the caches against a full
    /// recomputation, and the store's zero-on-empty detach keeps
    /// floating-point drift from ever accumulating past a PM's lifetime.
    pub fn step<D: DemandSource + ?Sized>(&mut self, source: &mut D) {
        let round = self.round;
        let secs = self.cfg.round_seconds;
        let pms = &mut self.pms;
        for vm in &mut self.vms {
            if let Some(host) = vm.host {
                let old_current = vm.current;
                let old_avg = vm.avg.value();
                let u = source.demand(vm.id, round);
                vm.observe(u, secs);
                pms.apply_demand_delta(host, vm.current - old_current, vm.avg.value() - old_avg);
            }
        }
        pms.tick_sla_active();
        self.round += 1;
    }

    /// Live-migrates `vm` to `to`, accounting duration, energy (Eq. 3) and
    /// the 10% CPU degradation on the VM (SLALM). Capacity is *not*
    /// enforced here — admission control is the consolidation policy's
    /// decision (GLAP's `in`-table veto, GRMP's threshold, …), and letting
    /// a policy overload a PM is exactly what the paper measures.
    pub fn migrate(&mut self, vm_id: VmId, to: PmId) -> Result<MigrationRecord, MigrationError> {
        let from = self.vms[vm_id.index()]
            .host
            .ok_or(MigrationError::VmNotPlaced)?;
        if from == to {
            return Err(MigrationError::SamePm);
        }
        if !self.pms.is_active(to.index()) {
            return Err(MigrationError::DestinationSleeping);
        }

        let (current, avg_v, mem_mb, cpu_util_of_nominal) = {
            let vm = &self.vms[vm_id.index()];
            let cpu_of_nominal = if vm.nominal_frac.cpu() > 0.0 {
                vm.current.cpu() / vm.nominal_frac.cpu()
            } else {
                0.0
            };
            (
                vm.current,
                vm.avg.value(),
                vm.mem_demand_mb(),
                cpu_of_nominal,
            )
        };

        // Inter-rack transfers cross the oversubscribed aggregation layer.
        let bw_factor = self
            .cfg
            .topology
            .map_or(1.0, |t| t.bandwidth_factor(from, to));
        let tau_s = self
            .cfg
            .migration
            .duration_s(mem_mb, self.cfg.pm_spec.net_mbps * bw_factor);
        let src_util = self.pm(from).utilization().cpu();
        let dst_util = self.pm(to).utilization().cpu();
        let energy_j = self
            .cfg
            .migration
            .energy_j(&self.power, src_util, dst_util, tau_s);

        self.pms.detach(from, vm_id, current, avg_v);
        self.pms.attach(to, vm_id, current, avg_v);
        self.vms[vm_id.index()].host = Some(to);
        self.vms[vm_id.index()].record_migration(cpu_util_of_nominal, tau_s);

        let rec = MigrationRecord {
            round: self.round,
            vm: vm_id,
            from,
            to,
            tau_s,
            energy_j,
        };
        self.pending_migrations.push(rec);
        self.total_migrations += 1;
        self.total_migration_energy_j += energy_j;
        self.tracer.emit(EventKind::MigrationCommitted {
            vm: vm_id.0,
            from: from.0,
            to: to.0,
        });
        Ok(rec)
    }

    /// Switches an *empty* PM to sleep. Returns `false` (and does nothing)
    /// if the PM still hosts VMs or is already sleeping.
    pub fn sleep_if_empty(&mut self, pm: PmId) -> bool {
        if self.pms.is_active(pm.index()) && self.pm(pm).is_empty() {
            self.pms.sleep(pm);
            self.tracer.emit(EventKind::PmSlept { pm: pm.0 });
            true
        } else {
            false
        }
    }

    /// Wakes a sleeping PM. Returns `false` if it was already active.
    pub fn wake(&mut self, pm: PmId) -> bool {
        if self.pms.is_active(pm.index()) {
            false
        } else {
            self.pms.wake(pm);
            self.pending_wake_ups += 1;
            self.tracer.emit(EventKind::PmWoke { pm: pm.0 });
            true
        }
    }

    /// Drains the migrations performed since the previous call (used by
    /// per-round metric collectors).
    pub fn take_migrations(&mut self) -> Vec<MigrationRecord> {
        std::mem::take(&mut self.pending_migrations)
    }

    /// Drains the count of sleeping→active transitions since the
    /// previous call (used by per-round metric collectors; exact even
    /// when a PM wakes and re-sleeps within one round).
    pub fn take_wake_ups(&mut self) -> usize {
        std::mem::take(&mut self.pending_wake_ups)
    }

    /// Lifetime migration count.
    #[inline]
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Lifetime migration energy overhead in joules.
    #[inline]
    pub fn total_migration_energy_j(&self) -> f64 {
        self.total_migration_energy_j
    }

    /// Debug-time invariant check: every placed VM appears on exactly its
    /// host's list, the SoA demand aggregates match a from-scratch
    /// recompute over the VM table, sleeping PMs are empty, the sorted
    /// active-set index mirrors the power array, and the placement arena
    /// fully accounts for its slab. Used by tests, checkpoint restore,
    /// and `debug_assert!`s in the round-driving harness.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.pms.check()?;
        for pm in self.pms() {
            if !pm.is_active() && !pm.is_empty() {
                return Err(format!(
                    "{} sleeps but hosts {} VMs",
                    pm.id(),
                    pm.vm_count()
                ));
            }
            let mut sum = Resources::ZERO;
            let mut sum_avg = Resources::ZERO;
            for &vm in pm.vms() {
                let v = &self.vms[vm.index()];
                if v.host != Some(pm.id()) {
                    return Err(format!(
                        "{vm} listed on {} but hosted on {:?}",
                        pm.id(),
                        v.host
                    ));
                }
                sum += v.current;
                sum_avg += v.avg.value();
            }
            if (sum.cpu() - pm.demand().cpu()).abs() > 1e-6
                || (sum.mem() - pm.demand().mem()).abs() > 1e-6
            {
                return Err(format!("{} aggregate drift", pm.id()));
            }
            if (sum_avg.cpu() - pm.avg_demand().cpu()).abs() > 1e-6
                || (sum_avg.mem() - pm.avg_demand().mem()).abs() > 1e-6
            {
                return Err(format!("{} average-aggregate drift", pm.id()));
            }
        }
        for vm in &self.vms {
            if let Some(host) = vm.host {
                if self.pms.pm(host).vms().iter().all(|&v| v != vm.id) {
                    return Err(format!(
                        "{} claims host {host} which does not list it",
                        vm.id
                    ));
                }
            }
        }
        Ok(())
    }

    /// Brings the learning-eligibility index up to date for `threshold`:
    /// recomputes the flag of every PM dirtied since the last refresh
    /// (or all PMs on first use / threshold change), then drains the
    /// dirty queue. Read the result with
    /// [`eligible_flags`](Self::eligible_flags); the split lets the
    /// flags coexist with a [`view`](Self::view) borrow.
    pub fn refresh_eligibility(&mut self, threshold: f64) {
        let n = self.pms.len();
        #[inline]
        fn compute(pms: &PmStore, i: usize, threshold: f64) -> bool {
            let p = pms.pm(PmId(i as u32));
            p.is_active() && p.utilization().cpu() <= threshold
        }
        if !self.elig.valid || self.elig.threshold != threshold || self.elig.flags.len() != n {
            self.elig.flags.clear();
            self.elig.flags.reserve(n);
            for i in 0..n {
                self.elig.flags.push(compute(&self.pms, i, threshold));
            }
            self.elig.threshold = threshold;
            self.elig.valid = true;
        } else {
            for k in 0..self.pms.dirty_ids().len() {
                let i = self.pms.dirty_ids()[k].index();
                self.elig.flags[i] = compute(&self.pms, i, threshold);
            }
        }
        self.pms.clear_dirty();
    }

    /// Per-PM learning-eligibility flags from the last
    /// [`refresh_eligibility`](Self::refresh_eligibility). Panics if the
    /// index was never refreshed.
    #[inline]
    pub fn eligible_flags(&self) -> &[bool] {
        assert!(
            self.elig.valid,
            "eligible_flags read before refresh_eligibility"
        );
        &self.elig.flags
    }

    /// A read-only, `Sync` view of the world for worker threads.
    ///
    /// `&DataCenter` itself is not `Sync` (it holds a single-threaded
    /// [`Tracer`] handle); the view borrows only the PM store and VM
    /// table — all the learning phase reads — so the trainer can fan
    /// per-PM training out over a pool while the tracer stays on the
    /// coordinating thread.
    #[inline]
    pub fn view(&self) -> DcView<'_> {
        DcView {
            pms: &self.pms,
            vms: &self.vms,
        }
    }
}

/// Immutable snapshot borrow of the PM store and VM table (see
/// [`DataCenter::view`]). `Copy`, `Send` and `Sync`: plain shared
/// references to plain data.
#[derive(Clone, Copy)]
pub struct DcView<'a> {
    pms: &'a PmStore,
    vms: &'a [Vm],
}

impl<'a> DcView<'a> {
    /// Immutable PM access.
    #[inline]
    pub fn pm(&self, id: PmId) -> PmRef<'a> {
        self.pms.pm(id)
    }

    /// Immutable VM access.
    #[inline]
    pub fn vm(&self, id: VmId) -> &'a Vm {
        &self.vms[id.index()]
    }

    /// Number of PMs.
    #[inline]
    pub fn n_pms(&self) -> usize {
        self.pms.len()
    }
}

/// Checkpointing captures only the *dynamic* state: round counter,
/// migration accounting, per-PM power/SLA/placement state *and cached
/// demand aggregates*, and per-VM demand bookkeeping. Static structure
/// (configuration, PM/VM count, specs, nominal fractions) is rebuilt
/// deterministically by the caller before restoring, and `restore`
/// validates that the topology matches. The aggregates travel in the
/// snapshot because [`DataCenter::step`] maintains them incrementally:
/// a recomputation on restore could differ from the accumulated values
/// in the last floating-point bits, and resume must continue the exact
/// byte stream of the uninterrupted run.
///
/// The byte layout is the v1 format from before the struct-of-arrays
/// refactor, unchanged: per-PM state is written in id order exactly as
/// the per-PM heap objects used to serialize, so pre-refactor snapshots
/// (`tests/fixtures/format_v1.snap` pins this) restore green and
/// post-refactor snapshots are byte-identical to what the old layout
/// would have produced.
impl Checkpointable for DataCenter {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.round);
        w.put_u64(self.total_migrations);
        w.put_f64(self.total_migration_energy_j);
        w.put_usize(self.pending_wake_ups);
        w.put_usize(self.pending_migrations.len());
        for m in &self.pending_migrations {
            w.put_u64(m.round);
            w.put_u32(m.vm.0);
            w.put_u32(m.from.0);
            w.put_u32(m.to.0);
            w.put_f64(m.tau_s);
            w.put_f64(m.energy_j);
        }
        w.put_usize(self.pms.len());
        for pm in self.pms() {
            w.put_bool(pm.is_active());
            w.put_u64(pm.active_rounds());
            w.put_u64(pm.saturated_rounds());
            w.put_f64(pm.demand().cpu());
            w.put_f64(pm.demand().mem());
            w.put_f64(pm.avg_demand().cpu());
            w.put_f64(pm.avg_demand().mem());
            w.put_usize(pm.vms().len());
            for vm in pm.vms() {
                w.put_u32(vm.0);
            }
        }
        w.put_usize(self.vms.len());
        for vm in &self.vms {
            w.put_f64(vm.current.cpu());
            w.put_f64(vm.current.mem());
            w.put_u64(vm.avg.count());
            w.put_f64(vm.avg.value().cpu());
            w.put_f64(vm.avg.value().mem());
            match vm.host {
                None => w.put_bool(false),
                Some(h) => {
                    w.put_bool(true);
                    w.put_u32(h.0);
                }
            }
            w.put_f64(vm.cpu_requested_mips_s);
            w.put_f64(vm.cpu_degraded_mips_s);
            w.put_u32(vm.migrations);
            w.put_bool(vm.departed);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        // Restored state replaces every eligibility input wholesale; force
        // the next refresh to rebuild rather than lean on dirty marks.
        self.elig.valid = false;
        let round = r.get_u64()?;
        let total_migrations = r.get_u64()?;
        let total_migration_energy_j = r.get_f64()?;
        let pending_wake_ups = r.get_usize()?;
        let n_pending = r.get_usize()?;
        let mut pending_migrations = Vec::with_capacity(n_pending.min(1 << 20));
        for _ in 0..n_pending {
            pending_migrations.push(MigrationRecord {
                round: r.get_u64()?,
                vm: VmId(r.get_u32()?),
                from: PmId(r.get_u32()?),
                to: PmId(r.get_u32()?),
                tau_s: r.get_f64()?,
                energy_j: r.get_f64()?,
            });
        }

        let n_pms = r.get_usize()?;
        if n_pms != self.pms.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n_pms} PMs, world has {}",
                self.pms.len()
            )));
        }
        let n_vms_total = self.vms.len();
        // Repopulate the SoA arrays in snapshot (= id) order; placement
        // lists are rebuilt into a pristine arena so the element order in
        // every list is exactly the serialized order.
        self.pms.reset_placements();
        for i in 0..n_pms {
            let pm = PmId(i as u32);
            self.pms.set_power_raw(
                pm,
                if r.get_bool()? {
                    PowerState::Active
                } else {
                    PowerState::Sleeping
                },
            );
            let active_rounds = r.get_u64()?;
            let saturated_rounds = r.get_u64()?;
            self.pms
                .set_sla_counters(pm, active_rounds, saturated_rounds);
            let current = Resources::new(r.get_f64()?, r.get_f64()?);
            let avg = Resources::new(r.get_f64()?, r.get_f64()?);
            self.pms.set_aggregates(pm, current, avg);
            let n = r.get_usize()?;
            for _ in 0..n {
                let id = r.get_u32()?;
                if id as usize >= n_vms_total {
                    return Err(SnapshotError::Corrupt(format!(
                        "snapshot references VM {id} beyond world size {n_vms_total}"
                    )));
                }
                self.pms.push_placement_raw(pm, VmId(id));
            }
        }
        self.pms.rebuild_active();

        let n_vms = r.get_usize()?;
        if n_vms != n_vms_total {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n_vms} VMs, world has {n_vms_total}"
            )));
        }
        let n_pms_total = self.pms.len();
        for vm in &mut self.vms {
            vm.current = Resources::new(r.get_f64()?, r.get_f64()?);
            let count = r.get_u64()?;
            vm.avg = crate::resources::RunningAvg::from_parts(
                count,
                Resources::new(r.get_f64()?, r.get_f64()?),
            );
            vm.host = if r.get_bool()? {
                let id = r.get_u32()?;
                if id as usize >= n_pms_total {
                    return Err(SnapshotError::Corrupt(format!(
                        "snapshot references PM {id} beyond world size {n_pms_total}"
                    )));
                }
                Some(PmId(id))
            } else {
                None
            };
            vm.cpu_requested_mips_s = r.get_f64()?;
            vm.cpu_degraded_mips_s = r.get_f64()?;
            vm.migrations = r.get_u32()?;
            vm.departed = r.get_bool()?;
        }

        self.round = round;
        self.total_migrations = total_migrations;
        self.total_migration_energy_j = total_migration_energy_j;
        self.pending_wake_ups = pending_wake_ups;
        self.pending_migrations = pending_migrations;

        // The snapshot carried the exact cached aggregates; the
        // invariant check cross-validates them against the VM sums.
        self.check_invariants().map_err(SnapshotError::Corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_dc(n_pms: usize, n_vms: usize) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_vms {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc
    }

    #[test]
    fn construction_counts() {
        let dc = small_dc(4, 8);
        assert_eq!(dc.n_pms(), 4);
        assert_eq!(dc.n_vms(), 8);
        assert_eq!(dc.active_pm_count(), 4);
        assert_eq!(dc.overloaded_pm_count(), 0);
    }

    #[test]
    fn random_placement_places_everything() {
        let mut dc = small_dc(4, 8);
        let mut rng = SmallRng::seed_from_u64(1);
        dc.random_placement(&mut rng);
        assert!(dc.vms().all(|v| v.host.is_some()));
        assert_eq!(dc.pms().map(|p| p.vm_count()).sum::<usize>(), 8);
        dc.check_invariants().unwrap();
    }

    #[test]
    fn random_placement_is_seed_deterministic() {
        let mut a = small_dc(8, 16);
        let mut b = small_dc(8, 16);
        a.random_placement(&mut SmallRng::seed_from_u64(7));
        b.random_placement(&mut SmallRng::seed_from_u64(7));
        for (va, vb) in a.vms().zip(b.vms()) {
            assert_eq!(va.host, vb.host);
        }
    }

    #[test]
    fn step_updates_demands_and_round() {
        let mut dc = small_dc(2, 2);
        dc.place(VmId(0), PmId(0));
        dc.place(VmId(1), PmId(0));
        let mut src = |_vm: VmId, _round: u64| Resources::new(1.0, 1.0);
        dc.step(&mut src);
        assert_eq!(dc.round(), 1);
        let expect = dc.vm(VmId(0)).nominal_frac * 2.0;
        assert!((dc.pm(PmId(0)).demand().cpu() - expect.cpu()).abs() < 1e-12);
        dc.check_invariants().unwrap();
    }

    #[test]
    fn migrate_moves_vm_and_records_costs() {
        let mut dc = small_dc(2, 1);
        dc.place(VmId(0), PmId(0));
        let mut src = |_: VmId, _: u64| Resources::new(0.5, 0.5);
        dc.step(&mut src);
        let rec = dc.migrate(VmId(0), PmId(1)).unwrap();
        assert_eq!(rec.from, PmId(0));
        assert_eq!(rec.to, PmId(1));
        assert!(rec.tau_s > 0.0);
        assert!(rec.energy_j > 0.0);
        assert_eq!(dc.vm(VmId(0)).host, Some(PmId(1)));
        assert_eq!(dc.pm(PmId(0)).vm_count(), 0);
        assert_eq!(dc.pm(PmId(1)).vm_count(), 1);
        assert_eq!(dc.total_migrations(), 1);
        dc.check_invariants().unwrap();
    }

    #[test]
    fn migrate_rejects_unplaced_same_pm_and_sleeping() {
        let mut dc = small_dc(2, 2);
        assert_eq!(
            dc.migrate(VmId(0), PmId(1)),
            Err(MigrationError::VmNotPlaced)
        );
        dc.place(VmId(0), PmId(0));
        assert_eq!(dc.migrate(VmId(0), PmId(0)), Err(MigrationError::SamePm));
        assert!(dc.sleep_if_empty(PmId(1)));
        assert_eq!(
            dc.migrate(VmId(0), PmId(1)),
            Err(MigrationError::DestinationSleeping)
        );
    }

    #[test]
    fn sleep_only_when_empty_wake_roundtrip() {
        let mut dc = small_dc(2, 1);
        dc.place(VmId(0), PmId(0));
        assert!(!dc.sleep_if_empty(PmId(0)));
        assert!(dc.sleep_if_empty(PmId(1)));
        assert!(!dc.sleep_if_empty(PmId(1)));
        assert_eq!(dc.active_pm_count(), 1);
        assert!(dc.wake(PmId(1)));
        assert!(!dc.wake(PmId(1)));
        assert_eq!(dc.active_pm_count(), 2);
    }

    #[test]
    fn active_index_tracks_sleep_wake_in_order() {
        let mut dc = small_dc(5, 0);
        dc.sleep_if_empty(PmId(3));
        dc.sleep_if_empty(PmId(0));
        let active: Vec<PmId> = dc.active_pm_ids().collect();
        assert_eq!(active, vec![PmId(1), PmId(2), PmId(4)]);
        dc.wake(PmId(0));
        let active: Vec<PmId> = dc.active_pm_ids().collect();
        assert_eq!(active, vec![PmId(0), PmId(1), PmId(2), PmId(4)]);
        dc.check_invariants().unwrap();
    }

    #[test]
    fn take_migrations_drains() {
        let mut dc = small_dc(2, 1);
        dc.place(VmId(0), PmId(0));
        let mut src = |_: VmId, _: u64| Resources::new(0.5, 0.5);
        dc.step(&mut src);
        dc.migrate(VmId(0), PmId(1)).unwrap();
        assert_eq!(dc.take_migrations().len(), 1);
        assert!(dc.take_migrations().is_empty());
        assert_eq!(dc.total_migrations(), 1);
    }

    #[test]
    fn overload_detection_via_step() {
        let mut dc = small_dc(1, 8);
        for i in 0..8 {
            dc.place(VmId(i), PmId(0));
        }
        // 8 VMs at full demand: CPU 8*500/2660 > 1 → overloaded.
        let mut src = |_: VmId, _: u64| Resources::new(1.0, 1.0);
        dc.step(&mut src);
        assert_eq!(dc.overloaded_pm_count(), 1);
        assert!(dc.pm(PmId(0)).cpu_saturated());
        assert_eq!(dc.pm(PmId(0)).saturated_rounds(), 1);
    }

    #[test]
    fn free_capacity_has_zero_floor() {
        let mut dc = small_dc(1, 8);
        for i in 0..8 {
            dc.place(VmId(i), PmId(0));
        }
        let mut src = |_: VmId, _: u64| Resources::new(1.0, 1.0);
        dc.step(&mut src);
        let free = dc.free_capacity(PmId(0));
        assert_eq!(free.cpu(), 0.0);
    }

    #[test]
    fn inter_rack_migration_is_slower_and_costlier() {
        use crate::topology::Topology;
        let topo = Topology {
            pms_per_rack: 2,
            inter_rack_bw_factor: 0.25,
            switch_watts: 150.0,
        };
        let mut dc = DataCenter::new(DataCenterConfig::paper_with_topology(4, topo));
        dc.add_vm(VmSpec::EC2_MICRO);
        dc.place(VmId(0), PmId(0));
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        dc.step(&mut src);
        let intra = dc.migrate(VmId(0), PmId(1)).unwrap(); // same rack
        let inter = dc.migrate(VmId(0), PmId(2)).unwrap(); // crosses racks
        assert!((inter.tau_s - 4.0 * intra.tau_s).abs() < 1e-9);
        assert!(inter.energy_j > intra.energy_j);
    }

    #[test]
    fn remove_vm_detaches_and_marks_departed() {
        let mut dc = small_dc(2, 2);
        dc.place(VmId(0), PmId(0));
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        dc.step(&mut src);
        assert!(dc.remove_vm(VmId(0)));
        assert!(!dc.remove_vm(VmId(0)), "double removal must be a no-op");
        assert_eq!(dc.pm(PmId(0)).vm_count(), 0);
        assert!(dc.vm(VmId(0)).departed);
        assert_eq!(dc.vm(VmId(0)).host, None);
        dc.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "placing a departed VM")]
    fn departed_vm_cannot_be_placed() {
        let mut dc = small_dc(2, 1);
        dc.remove_vm(VmId(0));
        dc.place(VmId(0), PmId(0));
    }

    #[test]
    fn random_placement_skips_departed() {
        let mut dc = small_dc(2, 4);
        dc.remove_vm(VmId(3));
        let mut rng = SmallRng::seed_from_u64(2);
        dc.random_placement(&mut rng);
        assert_eq!(dc.pms().map(|p| p.vm_count()).sum::<usize>(), 3);
    }

    #[test]
    fn invariant_checker_catches_drift() {
        let mut dc = small_dc(2, 1);
        dc.place(VmId(0), PmId(0));
        assert!(dc.check_invariants().is_ok());
    }

    fn demand(vm: VmId, round: u64) -> Resources {
        let x = (f64::from(vm.0) + 1.0) * (round as f64 + 1.0) * 0.37 % 1.0;
        Resources::new(x, x * 0.5)
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let mut a = small_dc(4, 10);
        a.random_placement(&mut SmallRng::seed_from_u64(3));
        for _ in 0..5 {
            a.step(&mut demand);
        }
        let from = a.vm(VmId(0)).host.unwrap();
        let to = PmId((from.0 + 1) % 4);
        a.migrate(VmId(0), to).unwrap();
        a.remove_vm(VmId(9));
        let empty = a.pms().find(|p| p.is_empty()).map(|p| p.id());
        if let Some(empty) = empty {
            a.sleep_if_empty(empty);
        }

        let mut w = Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();

        // Restore into a freshly built (same-topology) world.
        let mut b = small_dc(4, 10);
        b.restore(&mut Reader::new(&bytes)).unwrap();
        let mut w2 = Writer::new();
        b.save(&mut w2);
        assert_eq!(
            w2.into_bytes(),
            bytes,
            "save→restore→save must be identical"
        );
        assert_eq!(b.round(), a.round());
        assert_eq!(b.total_migrations(), a.total_migrations());

        // Both worlds evolve identically from here.
        for _ in 0..5 {
            a.step(&mut demand);
            b.step(&mut demand);
        }
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        a.save(&mut wa);
        b.save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    /// The event-driven eligibility index must agree with a from-scratch
    /// scan of the scalar predicate after every kind of mutation —
    /// steps, migrations, removals, sleeps, wakes and restores.
    #[test]
    fn eligibility_index_matches_full_scan_under_mutation() {
        use rand::Rng;
        let threshold = 0.7;
        let mut dc = small_dc(12, 30);
        let mut rng = SmallRng::seed_from_u64(21);
        dc.random_placement(&mut rng);
        let full_scan = |dc: &DataCenter| -> Vec<bool> {
            (0..dc.n_pms())
                .map(|i| {
                    let p = dc.pm(PmId(i as u32));
                    p.is_active() && p.utilization().cpu() <= threshold
                })
                .collect()
        };
        for round in 0..60 {
            let mut src = |vm: VmId, r: u64| {
                let x = 0.1 + 0.08 * ((vm.0 as f64 + r as f64).sin().abs());
                Resources::new(x, x)
            };
            dc.step(&mut src);
            match round % 5 {
                0 => {
                    let vm = VmId(rng.gen_range(0..30u32));
                    let to = PmId(rng.gen_range(0..12u32));
                    let _ = dc.migrate(vm, to);
                }
                1 => {
                    let pm = PmId(rng.gen_range(0..12u32));
                    dc.sleep_if_empty(pm);
                }
                2 => {
                    let pm = PmId(rng.gen_range(0..12u32));
                    dc.wake(pm);
                }
                3 => {
                    let vm = VmId(rng.gen_range(0..30u32));
                    dc.remove_vm(vm);
                }
                _ => {}
            }
            dc.refresh_eligibility(threshold);
            assert_eq!(dc.eligible_flags(), full_scan(&dc), "round {round}");
        }
        // Restore invalidates and rebuilds correctly.
        let mut w = Writer::new();
        dc.save(&mut w);
        let bytes = w.into_bytes();
        let mut other = small_dc(12, 30);
        other.refresh_eligibility(threshold);
        other.restore(&mut Reader::new(&bytes)).unwrap();
        other.refresh_eligibility(threshold);
        assert_eq!(other.eligible_flags(), full_scan(&other));
        // Threshold change forces a rebuild to the new predicate.
        dc.refresh_eligibility(0.2);
        let tighter: Vec<bool> = (0..dc.n_pms())
            .map(|i| {
                let p = dc.pm(PmId(i as u32));
                p.is_active() && p.utilization().cpu() <= 0.2
            })
            .collect();
        assert_eq!(dc.eligible_flags(), tighter);
    }

    #[test]
    fn restore_rejects_topology_mismatch() {
        let mut a = small_dc(4, 10);
        a.random_placement(&mut SmallRng::seed_from_u64(3));
        let mut w = Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut wrong = small_dc(8, 10);
        assert!(matches!(
            wrong.restore(&mut Reader::new(&bytes)).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        let mut wrong_vms = small_dc(4, 11);
        assert!(wrong_vms.restore(&mut Reader::new(&bytes)).is_err());
    }
}
