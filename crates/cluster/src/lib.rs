//! # glap-cluster — cloud data-center substrate
//!
//! The physical substrate every consolidation algorithm in this workspace
//! runs on: resource vectors, VM/PM models, demand stepping, live migration
//! with energy/degradation accounting, and power models — the parts of the
//! GLAP paper's evaluation environment that PeerSim did not provide and the
//! authors had to add.
//!
//! Hardware defaults match §V-A of the paper: HP ProLiant ML110 G5 servers
//! (2660 MIPS, 4 GB, 10 Gb/s) hosting EC2-micro-sized VMs (500 MIPS,
//! 613 MB), 2-minute rounds.
//!
//! ```
//! use glap_cluster::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut dc = DataCenter::new(DataCenterConfig::paper(10));
//! for _ in 0..20 {
//!     dc.add_vm(VmSpec::EC2_MICRO);
//! }
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! dc.random_placement(&mut rng);
//!
//! // Drive one round at 50% demand everywhere.
//! let mut trace = |_vm: VmId, _round: u64| Resources::splat(0.5);
//! dc.step(&mut trace);
//! assert_eq!(dc.round(), 1);
//! ```

mod arena;
pub mod datacenter;
pub mod ids;
pub mod pm;
pub mod power;
pub mod resources;
pub mod topology;
pub mod vm;

pub use datacenter::{
    DataCenter, DataCenterConfig, DcView, DemandSource, MigrationError, MigrationRecord,
};
pub use ids::{PmId, VmId};
pub use pm::{PmRef, PmSpec, PowerState};
pub use power::{MigrationModel, PowerModel};
pub use resources::{Resource, Resources, RunningAvg, NUM_RESOURCES};
pub use topology::{RackId, Topology};
pub use vm::{Vm, VmProfile, VmSpec};

/// Convenient glob import of the crate's main types.
pub mod prelude {
    pub use crate::datacenter::{
        DataCenter, DataCenterConfig, DemandSource, MigrationError, MigrationRecord,
    };
    pub use crate::ids::{PmId, VmId};
    pub use crate::pm::{PmRef, PmSpec, PowerState};
    pub use crate::power::{MigrationModel, PowerModel};
    pub use crate::resources::{Resource, Resources, RunningAvg};
    pub use crate::topology::{RackId, Topology};
    pub use crate::vm::{Vm, VmProfile, VmSpec};
}
