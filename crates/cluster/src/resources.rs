//! Two-dimensional (CPU, memory) resource vectors.
//!
//! The GLAP paper (§IV-A) models workloads over a set of resources
//! `M = {CPU, Memory}`. All demand bookkeeping in this crate is expressed as
//! *fractions of a physical machine's capacity* in each dimension, which is
//! what the paper's calibration of states/actions operates on. Absolute
//! units (MIPS / MB) only appear in [`crate::pm::PmSpec`] and
//! [`crate::vm::VmSpec`] and in the power/migration models.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Index, Mul, Sub, SubAssign};

/// Number of resource dimensions considered by the model.
pub const NUM_RESOURCES: usize = 2;

/// Identifies one resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Processing capacity (MIPS in absolute units).
    Cpu,
    /// Main memory (MB in absolute units).
    Mem,
}

impl Resource {
    /// All resource dimensions, in index order.
    pub const ALL: [Resource; NUM_RESOURCES] = [Resource::Cpu, Resource::Mem];

    /// The array index backing this dimension.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Resource::Cpu => 0,
            Resource::Mem => 1,
        }
    }
}

/// A non-negative quantity per resource dimension.
///
/// Depending on context this is either a capacity fraction in `[0, 1]`
/// (demands, utilizations) or an absolute quantity (MIPS, MB). The type is
/// deliberately `Copy` and allocation-free: it sits on every hot path of the
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources {
    values: [f64; NUM_RESOURCES],
}

impl Resources {
    /// Zero in every dimension.
    pub const ZERO: Resources = Resources {
        values: [0.0; NUM_RESOURCES],
    };

    /// One (full capacity) in every dimension.
    pub const FULL: Resources = Resources {
        values: [1.0; NUM_RESOURCES],
    };

    /// Builds a vector from explicit CPU and memory components.
    #[inline]
    pub const fn new(cpu: f64, mem: f64) -> Self {
        Resources { values: [cpu, mem] }
    }

    /// Builds a vector with the same value in every dimension.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Resources {
            values: [v; NUM_RESOURCES],
        }
    }

    /// CPU component.
    #[inline]
    pub const fn cpu(&self) -> f64 {
        self.values[0]
    }

    /// Memory component.
    #[inline]
    pub const fn mem(&self) -> f64 {
        self.values[1]
    }

    /// The raw component array.
    #[inline]
    pub const fn as_array(&self) -> [f64; NUM_RESOURCES] {
        self.values
    }

    /// Component for dimension `r`.
    #[inline]
    pub fn get(&self, r: Resource) -> f64 {
        self.values[r.index()]
    }

    /// Sets the component for dimension `r`.
    #[inline]
    pub fn set(&mut self, r: Resource, v: f64) {
        self.values[r.index()] = v;
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(&self, other: Resources) -> Resources {
        Resources {
            values: [
                self.values[0].min(other.values[0]),
                self.values[1].min(other.values[1]),
            ],
        }
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(&self, other: Resources) -> Resources {
        Resources {
            values: [
                self.values[0].max(other.values[0]),
                self.values[1].max(other.values[1]),
            ],
        }
    }

    /// Clamps every component to `[lo, hi]`.
    #[inline]
    pub fn clamp(&self, lo: f64, hi: f64) -> Resources {
        Resources {
            values: [self.values[0].clamp(lo, hi), self.values[1].clamp(lo, hi)],
        }
    }

    /// Largest component.
    #[inline]
    pub fn max_component(&self) -> f64 {
        self.values[0].max(self.values[1])
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(&self) -> f64 {
        self.values[0].min(self.values[1])
    }

    /// Sum of the components — the paper's "total utilization" used to pick
    /// the sender PM in Algorithm 3 (`arg min` over total current
    /// utilization).
    #[inline]
    pub fn total(&self) -> f64 {
        self.values[0] + self.values[1]
    }

    /// Arithmetic mean of the components — the "average resource utilization
    /// degree" used by the paper's calibration examples.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.total() / NUM_RESOURCES as f64
    }

    /// Element-wise multiplication.
    #[inline]
    pub fn mul_elem(&self, other: Resources) -> Resources {
        Resources {
            values: [
                self.values[0] * other.values[0],
                self.values[1] * other.values[1],
            ],
        }
    }

    /// Element-wise division. Caller must ensure `other` has no zero
    /// component.
    #[inline]
    pub fn div_elem(&self, other: Resources) -> Resources {
        debug_assert!(other.values.iter().all(|&v| v != 0.0));
        Resources {
            values: [
                self.values[0] / other.values[0],
                self.values[1] / other.values[1],
            ],
        }
    }

    /// `true` when every component of `self` is `<=` the matching component
    /// of `other` plus a small epsilon (capacity-fit check).
    #[inline]
    pub fn fits_within(&self, other: Resources) -> bool {
        const EPS: f64 = 1e-9;
        self.values[0] <= other.values[0] + EPS && self.values[1] <= other.values[1] + EPS
    }

    /// `true` when any component is `>=` the matching component of `other`
    /// minus epsilon (overload check against a capacity vector).
    #[inline]
    pub fn any_reaches(&self, other: Resources) -> bool {
        const EPS: f64 = 1e-9;
        self.values[0] >= other.values[0] - EPS || self.values[1] >= other.values[1] - EPS
    }

    /// `true` when every component is finite and non-negative.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.values.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Index<Resource> for Resources {
    type Output = f64;

    #[inline]
    fn index(&self, r: Resource) -> &f64 {
        &self.values[r.index()]
    }
}

impl Add for Resources {
    type Output = Resources;

    #[inline]
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            values: [
                self.values[0] + rhs.values[0],
                self.values[1] + rhs.values[1],
            ],
        }
    }
}

impl AddAssign for Resources {
    #[inline]
    fn add_assign(&mut self, rhs: Resources) {
        self.values[0] += rhs.values[0];
        self.values[1] += rhs.values[1];
    }
}

impl Sub for Resources {
    type Output = Resources;

    #[inline]
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            values: [
                self.values[0] - rhs.values[0],
                self.values[1] - rhs.values[1],
            ],
        }
    }
}

impl SubAssign for Resources {
    #[inline]
    fn sub_assign(&mut self, rhs: Resources) {
        self.values[0] -= rhs.values[0];
        self.values[1] -= rhs.values[1];
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;

    #[inline]
    fn mul(self, rhs: f64) -> Resources {
        Resources {
            values: [self.values[0] * rhs, self.values[1] * rhs],
        }
    }
}

impl Div<f64> for Resources {
    type Output = Resources;

    #[inline]
    fn div(self, rhs: f64) -> Resources {
        Resources {
            values: [self.values[0] / rhs, self.values[1] / rhs],
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |acc, r| acc + r)
    }
}

/// Incrementally maintained running average of a resource vector.
///
/// This is the `{c, v}` tuple each VM piggybacks in §IV-B of the paper: `c`
/// is the number of observations so far and `v` the running average, updated
/// as `((c * v) + d(t)) / (c + 1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningAvg {
    count: u64,
    value: Resources,
}

impl RunningAvg {
    /// A fresh average with no observations.
    pub const fn new() -> Self {
        RunningAvg {
            count: 0,
            value: Resources::ZERO,
        }
    }

    /// Starts from a known prior observation count and value (used when
    /// profiles are shipped between PMs during the learning phase).
    pub const fn from_parts(count: u64, value: Resources) -> Self {
        RunningAvg { count, value }
    }

    /// Records one demand observation.
    #[inline]
    pub fn observe(&mut self, demand: Resources) {
        let c = self.count as f64;
        self.value = (self.value * c + demand) / (c + 1.0);
        self.count += 1;
    }

    /// Number of observations recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current average; zero before any observation.
    #[inline]
    pub fn value(&self) -> Resources {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let r = Resources::new(0.25, 0.5);
        assert_eq!(r.cpu(), 0.25);
        assert_eq!(r.mem(), 0.5);
        assert_eq!(r.get(Resource::Cpu), 0.25);
        assert_eq!(r.get(Resource::Mem), 0.5);
        assert_eq!(r[Resource::Mem], 0.5);
    }

    #[test]
    fn set_updates_single_dimension() {
        let mut r = Resources::ZERO;
        r.set(Resource::Mem, 0.7);
        assert_eq!(r, Resources::new(0.0, 0.7));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Resources::new(0.2, 0.3);
        let b = Resources::new(0.1, 0.1);
        assert_eq!(a + b, Resources::new(0.30000000000000004, 0.4));
        assert_eq!(a - b, Resources::new(0.1, 0.19999999999999998));
        assert_eq!(a * 2.0, Resources::new(0.4, 0.6));
        assert_eq!(a / 2.0, Resources::new(0.1, 0.15));
    }

    #[test]
    fn add_sub_assign() {
        let mut r = Resources::new(0.5, 0.5);
        r += Resources::new(0.25, 0.0);
        assert_eq!(r, Resources::new(0.75, 0.5));
        r -= Resources::new(0.75, 0.5);
        assert!(r.cpu().abs() < 1e-12 && r.mem().abs() < 1e-12);
    }

    #[test]
    fn total_and_mean() {
        let r = Resources::new(0.4, 0.6);
        assert!((r.total() - 1.0).abs() < 1e-12);
        assert!((r.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn component_extrema() {
        let r = Resources::new(0.9, 0.1);
        assert_eq!(r.max_component(), 0.9);
        assert_eq!(r.min_component(), 0.1);
    }

    #[test]
    fn fits_within_checks_every_dimension() {
        let cap = Resources::FULL;
        assert!(Resources::new(1.0, 0.5).fits_within(cap));
        assert!(!Resources::new(1.1, 0.5).fits_within(cap));
        assert!(!Resources::new(0.5, 1.2).fits_within(cap));
    }

    #[test]
    fn any_reaches_triggers_on_single_dimension() {
        let cap = Resources::FULL;
        assert!(Resources::new(1.0, 0.2).any_reaches(cap));
        assert!(Resources::new(0.2, 1.0).any_reaches(cap));
        assert!(!Resources::new(0.99, 0.99).any_reaches(cap));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Resources = [Resources::new(0.1, 0.2), Resources::new(0.3, 0.4)]
            .into_iter()
            .sum();
        assert!((total.cpu() - 0.4).abs() < 1e-12);
        assert!((total.mem() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn clamp_bounds_components() {
        let r = Resources::new(-0.5, 1.5);
        assert_eq!(r.clamp(0.0, 1.0), Resources::new(0.0, 1.0));
    }

    #[test]
    fn element_wise_mul_div() {
        let a = Resources::new(0.5, 0.8);
        let b = Resources::new(2.0, 4.0);
        assert_eq!(a.mul_elem(b), Resources::new(1.0, 3.2));
        assert_eq!(a.div_elem(b), Resources::new(0.25, 0.2));
    }

    #[test]
    fn validity() {
        assert!(Resources::new(0.0, 1.0).is_valid());
        assert!(!Resources::new(-0.1, 1.0).is_valid());
        assert!(!Resources::new(f64::NAN, 1.0).is_valid());
    }

    #[test]
    fn running_avg_matches_paper_update_rule() {
        let mut avg = RunningAvg::new();
        avg.observe(Resources::new(0.2, 0.4));
        avg.observe(Resources::new(0.4, 0.0));
        // ((1 * 0.2) + 0.4) / 2 = 0.3 ; ((1 * 0.4) + 0.0) / 2 = 0.2
        assert!((avg.value().cpu() - 0.3).abs() < 1e-12);
        assert!((avg.value().mem() - 0.2).abs() < 1e-12);
        assert_eq!(avg.count(), 2);
    }

    #[test]
    fn running_avg_from_parts_continues_correctly() {
        let mut avg = RunningAvg::from_parts(3, Resources::new(0.3, 0.3));
        avg.observe(Resources::new(0.7, 0.7));
        // ((3 * 0.3) + 0.7) / 4 = 0.4
        assert!((avg.value().cpu() - 0.4).abs() < 1e-12);
        assert_eq!(avg.count(), 4);
    }

    #[test]
    fn running_avg_empty_is_zero() {
        let avg = RunningAvg::new();
        assert_eq!(avg.value(), Resources::ZERO);
        assert_eq!(avg.count(), 0);
    }
}
