//! Strongly typed identifiers for physical and virtual machines.
//!
//! Both are dense indices into the [`crate::datacenter::DataCenter`]'s
//! backing vectors, kept at 32 bits so hot per-round structures stay small.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical machine (index into the data center's PM table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PmId(pub u32);

/// Identifier of a virtual machine (index into the data center's VM table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl PmId {
    /// The backing index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VmId {
    /// The backing index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PM{}", self.0)
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VM{}", self.0)
    }
}

impl From<u32> for PmId {
    fn from(v: u32) -> Self {
        PmId(v)
    }
}

impl From<u32> for VmId {
    fn from(v: u32) -> Self {
        VmId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        assert_eq!(PmId(7).index(), 7);
        assert_eq!(VmId(9).index(), 9);
        assert_eq!(PmId::from(3), PmId(3));
        assert_eq!(VmId::from(4), VmId(4));
        assert_eq!(format!("{}", PmId(1)), "PM1");
        assert_eq!(format!("{}", VmId(2)), "VM2");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(PmId(1) < PmId(2));
        assert!(VmId(10) > VmId(9));
    }
}
