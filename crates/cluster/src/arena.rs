//! CSR-style placement arena: one flat slab for every PM's hosted-VM list.
//!
//! At 100k+ PMs, per-PM `Vec<VmId>`s mean one heap allocation per machine
//! and a pointer chase per access. The arena instead block-allocates each
//! PM's list inside a single `Vec<VmId>` slab, CSR-style: per-PM
//! `(offset, len, capacity)` triples index into the slab, blocks are
//! power-of-two sized and recycled through per-size-class free lists when
//! a list outgrows its block. Element *order* within a list exactly
//! replicates the `Vec` semantics the simulation was built on (`push` to
//! the back, `swap_remove` by position), so every consumer — placement,
//! migration, π_out scans, snapshots — observes byte-identical lists; only
//! the memory layout changed.

use crate::ids::VmId;

/// Smallest non-empty block capacity (a power of two). Lists grow
/// 0 → 4 → 8 → … exactly like small `Vec`s do.
const MIN_CAP: usize = 4;

/// Flat block-allocated storage for `n` variable-length `VmId` lists.
#[derive(Debug, Clone)]
pub(crate) struct PlacementArena {
    /// Block start of each list within `slab` (meaningless while `cap == 0`).
    off: Vec<usize>,
    /// Live length of each list.
    len: Vec<usize>,
    /// Block capacity of each list: zero or a power of two ≥ [`MIN_CAP`].
    cap: Vec<usize>,
    /// The single shared slab all blocks are carved from.
    slab: Vec<VmId>,
    /// Recycled blocks by size class: `free[c]` holds offsets of free
    /// blocks of capacity `1 << c`.
    free: Vec<Vec<usize>>,
}

impl PlacementArena {
    /// An arena of `n` empty lists.
    pub(crate) fn new(n: usize) -> Self {
        PlacementArena {
            off: vec![0; n],
            len: vec![0; n],
            cap: vec![0; n],
            slab: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of lists.
    #[inline]
    pub(crate) fn lists(&self) -> usize {
        self.len.len()
    }

    /// List `i` as a slice, in insertion/`swap_remove` order.
    #[inline]
    pub(crate) fn slice(&self, i: usize) -> &[VmId] {
        &self.slab[self.off[i]..self.off[i] + self.len[i]]
    }

    /// Length of list `i`.
    #[inline]
    pub(crate) fn len(&self, i: usize) -> usize {
        self.len[i]
    }

    /// Position of `vm` in list `i`, if present (linear scan — lists are
    /// a handful of VMs).
    #[inline]
    pub(crate) fn position(&self, i: usize, vm: VmId) -> Option<usize> {
        self.slice(i).iter().position(|&v| v == vm)
    }

    /// Appends `vm` to the back of list `i` (the `Vec::push` equivalent).
    pub(crate) fn push(&mut self, i: usize, vm: VmId) {
        if self.len[i] == self.cap[i] {
            self.grow(i);
        }
        self.slab[self.off[i] + self.len[i]] = vm;
        self.len[i] += 1;
    }

    /// Removes position `pos` of list `i` by swapping the last element in
    /// (the `Vec::swap_remove` equivalent — same resulting order).
    pub(crate) fn swap_remove(&mut self, i: usize, pos: usize) -> VmId {
        let n = self.len[i];
        assert!(pos < n, "swap_remove out of bounds");
        let base = self.off[i];
        let removed = self.slab[base + pos];
        self.slab[base + pos] = self.slab[base + n - 1];
        self.len[i] = n - 1;
        removed
    }

    /// Doubles list `i`'s block (or allocates its first), recycling a
    /// free block of the right class when one exists.
    fn grow(&mut self, i: usize) {
        let old_cap = self.cap[i];
        let new_cap = if old_cap == 0 { MIN_CAP } else { old_cap * 2 };
        let class = new_cap.trailing_zeros() as usize;
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        let new_off = match self.free[class].pop() {
            Some(off) => off,
            None => {
                let off = self.slab.len();
                self.slab.resize(off + new_cap, VmId(u32::MAX));
                off
            }
        };
        let old_off = self.off[i];
        let live = self.len[i];
        self.slab.copy_within(old_off..old_off + live, new_off);
        if old_cap > 0 {
            self.free[old_cap.trailing_zeros() as usize].push(old_off);
        }
        self.off[i] = new_off;
        self.cap[i] = new_cap;
    }

    /// Empties every list and returns all blocks to a pristine arena
    /// (checkpoint restore rebuilds placements from the snapshot).
    pub(crate) fn reset(&mut self) {
        self.off.iter_mut().for_each(|o| *o = 0);
        self.len.iter_mut().for_each(|l| *l = 0);
        self.cap.iter_mut().for_each(|c| *c = 0);
        self.slab.clear();
        self.free.iter_mut().for_each(Vec::clear);
    }

    /// Structural self-check: block bounds, capacity classes, and full
    /// accounting of the slab between live blocks and free lists with no
    /// overlap. O(total blocks · log) — debug/test use.
    pub(crate) fn check(&self) -> Result<(), String> {
        let mut blocks: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.lists() {
            if self.len[i] > self.cap[i] {
                return Err(format!(
                    "arena list {i}: len {} > cap {}",
                    self.len[i], self.cap[i]
                ));
            }
            if self.cap[i] > 0 {
                if !self.cap[i].is_power_of_two() || self.cap[i] < MIN_CAP {
                    return Err(format!("arena list {i}: bad capacity {}", self.cap[i]));
                }
                blocks.push((self.off[i], self.cap[i]));
            } else if self.len[i] > 0 {
                return Err(format!("arena list {i}: non-empty with zero capacity"));
            }
        }
        for (class, list) in self.free.iter().enumerate() {
            for &off in list {
                blocks.push((off, 1 << class));
            }
        }
        blocks.sort_unstable();
        let mut covered = 0usize;
        for (off, cap) in blocks {
            if off != covered {
                return Err(format!(
                    "arena block at {off} (cap {cap}) {} slab cursor {covered}",
                    if off < covered {
                        "overlaps"
                    } else {
                        "leaves a gap before"
                    }
                ));
            }
            covered = off + cap;
        }
        if covered != self.slab.len() {
            return Err(format!(
                "arena accounts {covered} slab slots of {}",
                self.slab.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_slice_preserve_order() {
        let mut a = PlacementArena::new(2);
        for k in 0..10 {
            a.push(0, VmId(k));
        }
        a.push(1, VmId(100));
        assert_eq!(a.len(0), 10);
        assert_eq!(a.slice(0)[3], VmId(3));
        assert_eq!(a.slice(1), &[VmId(100)]);
        a.check().unwrap();
    }

    #[test]
    fn swap_remove_matches_vec_semantics() {
        let mut a = PlacementArena::new(1);
        let mut model: Vec<VmId> = Vec::new();
        for k in 0..9 {
            a.push(0, VmId(k));
            model.push(VmId(k));
        }
        for pos in [2, 0, 5, 3] {
            assert_eq!(a.swap_remove(0, pos), model.swap_remove(pos));
            assert_eq!(a.slice(0), &model[..]);
        }
        a.check().unwrap();
    }

    #[test]
    fn grown_blocks_are_recycled() {
        let mut a = PlacementArena::new(3);
        // Grow list 0 through several classes, then empty it: its blocks
        // never shrink, but list 1 growing later reuses the freed ones.
        for k in 0..20 {
            a.push(0, VmId(k));
        }
        let slab_after_growth = a.slab.len();
        for k in 0..20 {
            a.push(1, VmId(200 + k));
        }
        a.check().unwrap();
        // Freed intermediate blocks of list 0 (caps 4, 8, 16) were reused
        // by list 1's growth chain, so the slab grew by less than another
        // full 4+8+16+32 chain.
        assert!(a.slab.len() < slab_after_growth + 4 + 8 + 16 + 32);
        a.check().unwrap();
    }

    #[test]
    fn reset_returns_to_pristine() {
        let mut a = PlacementArena::new(2);
        for k in 0..12 {
            a.push(0, VmId(k));
        }
        a.reset();
        assert_eq!(a.len(0), 0);
        assert_eq!(a.slab.len(), 0);
        a.check().unwrap();
        a.push(0, VmId(7));
        assert_eq!(a.slice(0), &[VmId(7)]);
        a.check().unwrap();
    }

    #[test]
    #[should_panic(expected = "swap_remove out of bounds")]
    fn swap_remove_bounds_checked() {
        let mut a = PlacementArena::new(1);
        a.push(0, VmId(1));
        a.swap_remove(0, 1);
    }
}
