//! Virtual machine model.
//!
//! A VM has a nominal size (its allocation at creation — the paper models
//! EC2 micro instances: 500 MIPS, 613 MB) and a time-varying demand driven
//! by a workload trace. Demands are stored as fractions of the hosting PM's
//! capacity, which is the unit the calibrated Q-learning states operate on.

use crate::ids::{PmId, VmId};
use crate::resources::{Resources, RunningAvg};
use serde::{Deserialize, Serialize};

/// Static sizing of a VM in absolute units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Nominal CPU allocation in MIPS.
    pub cpu_mips: f64,
    /// Nominal memory allocation in MB.
    pub mem_mb: f64,
}

impl VmSpec {
    /// Amazon EC2 micro instance, the VM type used in the paper's
    /// evaluation (§V-A).
    pub const EC2_MICRO: VmSpec = VmSpec {
        cpu_mips: 500.0,
        mem_mb: 613.0,
    };

    /// EC2 m1.small — extension beyond the paper's micro-only fleet; a
    /// heterogeneous mix exercises the full calibrated action space (the
    /// paper's own worked examples use VM actions like (4xHigh, xHigh),
    /// which only large VMs can produce).
    pub const M1_SMALL: VmSpec = VmSpec {
        cpu_mips: 1000.0,
        mem_mb: 1740.0,
    };

    /// EC2 m1.medium (see [`VmSpec::M1_SMALL`] on why mixes matter).
    pub const M1_MEDIUM: VmSpec = VmSpec {
        cpu_mips: 2000.0,
        mem_mb: 3480.0,
    };

    /// Nominal size as a resource vector in absolute units.
    #[inline]
    pub fn nominal(&self) -> Resources {
        Resources::new(self.cpu_mips, self.mem_mb)
    }
}

/// A virtual machine and its demand bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vm {
    /// This VM's identifier.
    pub id: VmId,
    /// Static sizing.
    pub spec: VmSpec,
    /// Nominal size expressed as a fraction of (homogeneous) PM capacity.
    pub nominal_frac: Resources,
    /// Current demand as a fraction of PM capacity.
    pub current: Resources,
    /// Running average demand — the `{c, v}` piggyback of §IV-B.
    pub avg: RunningAvg,
    /// Hosting PM, if placed.
    pub host: Option<PmId>,
    /// Total CPU requested over the VM's lifetime, in MIPS·seconds
    /// (denominator `C_r` of the paper's SLALM metric).
    pub cpu_requested_mips_s: f64,
    /// Total CPU degradation caused by this VM's live migrations, in
    /// MIPS·seconds (numerator `C_d` of SLALM: 10% of CPU utilization
    /// during each migration).
    pub cpu_degraded_mips_s: f64,
    /// Number of live migrations this VM has undergone.
    pub migrations: u32,
    /// `true` once the VM has left the system (its slot is retained for
    /// stable ids and final SLA accounting, but it no longer consumes
    /// resources and cannot be placed again).
    pub departed: bool,
}

impl Vm {
    /// Creates an unplaced VM with zero demand.
    pub fn new(id: VmId, spec: VmSpec, pm_capacity: Resources) -> Self {
        let nominal_frac = spec.nominal().div_elem(pm_capacity);
        Vm {
            id,
            spec,
            nominal_frac,
            current: Resources::ZERO,
            avg: RunningAvg::new(),
            host: None,
            cpu_requested_mips_s: 0.0,
            cpu_degraded_mips_s: 0.0,
            migrations: 0,
            departed: false,
        }
    }

    /// Applies a new utilization observation.
    ///
    /// `util_of_nominal` is the trace value: the fraction of the VM's own
    /// nominal allocation in use per resource (each component in `[0, 1]`).
    /// Demand relative to PM capacity is derived from it, the running
    /// average is advanced and the lifetime CPU request accumulator grows
    /// by `demand · round_seconds`.
    pub fn observe(&mut self, util_of_nominal: Resources, round_seconds: f64) {
        debug_assert!(util_of_nominal.is_valid());
        let clamped = util_of_nominal.clamp(0.0, 1.0);
        self.current = clamped.mul_elem(self.nominal_frac);
        self.avg.observe(self.current);
        self.cpu_requested_mips_s += self.spec.cpu_mips * clamped.cpu() * round_seconds;
    }

    /// Records the SLALM degradation of one live migration: 10% of the
    /// VM's CPU utilization over the migration duration `tau_s` seconds
    /// (the estimator of Beloglazov & Buyya the paper adopts).
    pub fn record_migration(&mut self, util_cpu_of_nominal: f64, tau_s: f64) {
        self.cpu_degraded_mips_s += 0.1 * self.spec.cpu_mips * util_cpu_of_nominal * tau_s;
        self.migrations += 1;
    }

    /// Current memory demand in MB (drives migration duration).
    #[inline]
    pub fn mem_demand_mb(&self) -> f64 {
        // Live migration transfers the VM's active memory footprint; we use
        // the current demand, never less than a small floor so an idle VM
        // still costs something to move.
        (self.current.mem() * self.spec.mem_mb / self.nominal_frac.mem()).max(64.0)
    }

    /// A compact profile of this VM as shipped around by the learning
    /// phase: current demand plus the running-average piggyback.
    #[inline]
    pub fn profile(&self) -> VmProfile {
        VmProfile {
            current: self.current,
            avg: self.avg,
        }
    }
}

/// The demand profile of a VM as exchanged between PMs in the learning
/// phase (Algorithm 1): current demand and the `{c, v}` average tuple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmProfile {
    /// Demand right now, as a fraction of PM capacity.
    pub current: Resources,
    /// Running average demand.
    pub avg: RunningAvg,
}

impl VmProfile {
    /// Builds a profile directly from fractions (used by tests and the
    /// learning phase's profile duplication).
    pub fn from_fractions(current: Resources, avg: Resources) -> Self {
        VmProfile {
            current,
            avg: RunningAvg::from_parts(1, avg),
        }
    }

    /// Average demand vector.
    #[inline]
    pub fn avg_value(&self) -> Resources {
        self.avg.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm_cap() -> Resources {
        // HP ProLiant ML110 G5 capacity from the paper.
        Resources::new(2660.0, 4096.0)
    }

    #[test]
    fn nominal_fraction_matches_paper_hardware() {
        let vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        assert!((vm.nominal_frac.cpu() - 500.0 / 2660.0).abs() < 1e-12);
        assert!((vm.nominal_frac.mem() - 613.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn observe_scales_demand_by_nominal_fraction() {
        let mut vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        vm.observe(Resources::new(1.0, 0.5), 120.0);
        assert!((vm.current.cpu() - 500.0 / 2660.0).abs() < 1e-12);
        assert!((vm.current.mem() - 0.5 * 613.0 / 4096.0).abs() < 1e-12);
    }

    #[test]
    fn observe_clamps_trace_values() {
        let mut vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        vm.observe(Resources::new(1.5, 0.0), 120.0);
        assert!(vm.current.cpu() <= vm.nominal_frac.cpu() + 1e-12);
    }

    #[test]
    fn observe_accumulates_requested_cpu() {
        let mut vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        vm.observe(Resources::new(0.5, 0.5), 120.0);
        vm.observe(Resources::new(0.5, 0.5), 120.0);
        // 2 rounds * 500 MIPS * 0.5 * 120 s
        assert!((vm.cpu_requested_mips_s - 2.0 * 500.0 * 0.5 * 120.0).abs() < 1e-9);
    }

    #[test]
    fn running_average_tracks_observations() {
        let mut vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        vm.observe(Resources::new(0.2, 0.2), 120.0);
        vm.observe(Resources::new(0.6, 0.6), 120.0);
        let expect = Resources::new(0.4, 0.4).mul_elem(vm.nominal_frac);
        assert!((vm.avg.value().cpu() - expect.cpu()).abs() < 1e-12);
        assert!((vm.avg.value().mem() - expect.mem()).abs() < 1e-12);
    }

    #[test]
    fn migration_degradation_is_ten_percent_of_cpu() {
        let mut vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        vm.record_migration(0.8, 10.0);
        assert!((vm.cpu_degraded_mips_s - 0.1 * 500.0 * 0.8 * 10.0).abs() < 1e-9);
        assert_eq!(vm.migrations, 1);
    }

    #[test]
    fn mem_demand_has_floor() {
        let vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        assert!(vm.mem_demand_mb() >= 64.0);
    }

    #[test]
    fn mem_demand_tracks_current_usage() {
        let mut vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        vm.observe(Resources::new(0.0, 1.0), 120.0);
        assert!((vm.mem_demand_mb() - 613.0).abs() < 1e-9);
    }

    #[test]
    fn profile_reflects_state() {
        let mut vm = Vm::new(VmId(0), VmSpec::EC2_MICRO, pm_cap());
        vm.observe(Resources::new(0.4, 0.4), 120.0);
        let p = vm.profile();
        assert_eq!(p.current, vm.current);
        assert_eq!(p.avg_value(), vm.avg.value());
    }
}
