//! Power and migration-energy model.
//!
//! The paper (§V-B) measures the cost of a live migration as the energy
//! overhead it imposes (Eq. 3, after Strunk & Dargie \[2\]):
//!
//! ```text
//! E_{i→j} = ((P_i^lm − P_i^idle) + (P_j^lm − P_j^idle)) · τ_{i→j}
//! ```
//!
//! where `P^lm` is the power drawn during the migration (a linear function
//! of CPU utilization including the migration's own CPU overhead) and `τ`
//! the migration duration, which "strongly varies with VM's memory size and
//! available transmission bandwidth".

use crate::pm::PmSpec;
use serde::{Deserialize, Serialize};

/// Linear server power model: `P(u) = P_idle + (P_max − P_idle) · u_cpu`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle power draw in watts.
    pub idle_watts: f64,
    /// Full-load power draw in watts.
    pub max_watts: f64,
}

impl PowerModel {
    /// Builds the model from a PM spec.
    pub fn from_spec(spec: &PmSpec) -> Self {
        PowerModel {
            idle_watts: spec.idle_watts,
            max_watts: spec.max_watts,
        }
    }

    /// Instantaneous power at the given CPU utilization fraction.
    #[inline]
    pub fn watts(&self, cpu_util: f64) -> f64 {
        self.idle_watts + (self.max_watts - self.idle_watts) * cpu_util.clamp(0.0, 1.0)
    }

    /// Dynamic (above-idle) power at the given CPU utilization.
    #[inline]
    pub fn dynamic_watts(&self, cpu_util: f64) -> f64 {
        (self.max_watts - self.idle_watts) * cpu_util.clamp(0.0, 1.0)
    }
}

/// Parameters of the live-migration cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Fraction of the link bandwidth actually available to a migration
    /// stream (the rest carries tenant traffic).
    pub bandwidth_share: f64,
    /// Extra CPU load (fraction of capacity) the migration daemon imposes
    /// on source and destination while the transfer runs.
    pub cpu_overhead: f64,
}

impl Default for MigrationModel {
    fn default() -> Self {
        // Half the 10 Gb/s link usable, 10% CPU overhead on both ends —
        // consistent with the measurements in the paper's reference [2].
        MigrationModel {
            bandwidth_share: 0.5,
            cpu_overhead: 0.1,
        }
    }
}

impl MigrationModel {
    /// Duration of migrating `mem_mb` megabytes of VM memory over a link of
    /// `net_mbps` megabit/s, in seconds.
    #[inline]
    pub fn duration_s(&self, mem_mb: f64, net_mbps: f64) -> f64 {
        let usable_mbps = net_mbps * self.bandwidth_share;
        debug_assert!(usable_mbps > 0.0);
        mem_mb * 8.0 / usable_mbps
    }

    /// Energy overhead in joules of one migration (Eq. 3).
    ///
    /// `src_cpu_util` / `dst_cpu_util` are the CPU utilizations of the two
    /// PMs while the migration runs, *excluding* the migration's own
    /// overhead (which this function adds).
    pub fn energy_j(
        &self,
        power: &PowerModel,
        src_cpu_util: f64,
        dst_cpu_util: f64,
        tau_s: f64,
    ) -> f64 {
        let p_src = power.dynamic_watts(src_cpu_util + self.cpu_overhead);
        let p_dst = power.dynamic_watts(dst_cpu_util + self.cpu_overhead);
        (p_src + p_dst) * tau_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::from_spec(&PmSpec::HP_PROLIANT_ML110_G5)
    }

    #[test]
    fn idle_and_full_load_power() {
        let m = model();
        assert!((m.watts(0.0) - 93.7).abs() < 1e-9);
        assert!((m.watts(1.0) - 135.0).abs() < 1e-9);
    }

    #[test]
    fn power_is_linear_in_utilization() {
        let m = model();
        let mid = m.watts(0.5);
        assert!((mid - (93.7 + 0.5 * (135.0 - 93.7))).abs() < 1e-9);
    }

    #[test]
    fn power_clamps_utilization() {
        let m = model();
        assert_eq!(m.watts(1.5), m.watts(1.0));
        assert_eq!(m.watts(-0.5), m.watts(0.0));
    }

    #[test]
    fn dynamic_power_excludes_idle() {
        let m = model();
        assert!((m.dynamic_watts(1.0) - (135.0 - 93.7)).abs() < 1e-9);
        assert_eq!(m.dynamic_watts(0.0), 0.0);
    }

    #[test]
    fn migration_duration_scales_with_memory() {
        let mm = MigrationModel::default();
        // 613 MB over half of 10 Gb/s = 613*8/5000 s
        let tau = mm.duration_s(613.0, 10_000.0);
        assert!((tau - 613.0 * 8.0 / 5000.0).abs() < 1e-9);
        assert!(mm.duration_s(1226.0, 10_000.0) > tau);
    }

    #[test]
    fn migration_energy_positive_and_monotonic_in_load() {
        let mm = MigrationModel::default();
        let pw = model();
        let e_light = mm.energy_j(&pw, 0.1, 0.1, 1.0);
        let e_heavy = mm.energy_j(&pw, 0.8, 0.8, 1.0);
        assert!(e_light > 0.0);
        assert!(e_heavy > e_light);
    }

    #[test]
    fn migration_energy_scales_with_duration() {
        let mm = MigrationModel::default();
        let pw = model();
        let e1 = mm.energy_j(&pw, 0.5, 0.5, 1.0);
        let e2 = mm.energy_j(&pw, 0.5, 0.5, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }
}
