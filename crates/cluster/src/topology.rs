//! Rack-level network topology.
//!
//! The GLAP paper's future work: "we plan to extend the algorithm to be
//! aware of the network topology such that it will switch off network
//! switches, an important factor of energy consumption in cloud data
//! centers". This module supplies the substrate: a two-level tree (PMs
//! grouped into racks behind top-of-rack switches) with
//!
//! * a rack map (`rack_of`),
//! * a bandwidth model where *inter*-rack migrations traverse the
//!   oversubscribed aggregation layer and get a reduced share,
//! * switch power accounting: a ToR switch can power down only when its
//!   whole rack is asleep.

use crate::datacenter::DataCenter;
use crate::ids::PmId;
use serde::{Deserialize, Serialize};

/// Identifier of a rack (index of its ToR switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RackId(pub u32);

/// A two-level rack topology over a homogeneous PM population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// PMs per rack (the last rack may be partially filled).
    pub pms_per_rack: usize,
    /// Bandwidth factor for migrations crossing racks (aggregation-layer
    /// oversubscription): `0 < factor ≤ 1`.
    pub inter_rack_bw_factor: f64,
    /// Power draw of one top-of-rack switch, watts.
    pub switch_watts: f64,
}

impl Default for Topology {
    fn default() -> Self {
        // 40 servers behind a ToR switch, 4:1 oversubscription to the
        // aggregation layer, ~150 W per switch — typical published
        // figures for the era's data centers.
        Topology {
            pms_per_rack: 40,
            inter_rack_bw_factor: 0.25,
            switch_watts: 150.0,
        }
    }
}

impl Topology {
    /// The rack hosting `pm`.
    #[inline]
    pub fn rack_of(&self, pm: PmId) -> RackId {
        RackId((pm.index() / self.pms_per_rack) as u32)
    }

    /// Whether two PMs share a rack.
    #[inline]
    pub fn same_rack(&self, a: PmId, b: PmId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Number of racks needed for `n_pms` machines.
    pub fn rack_count(&self, n_pms: usize) -> usize {
        n_pms.div_ceil(self.pms_per_rack)
    }

    /// The PMs of one rack, given the total PM count.
    pub fn rack_members(&self, rack: RackId, n_pms: usize) -> impl Iterator<Item = PmId> {
        let start = rack.0 as usize * self.pms_per_rack;
        let end = (start + self.pms_per_rack).min(n_pms);
        (start..end).map(|i| PmId(i as u32))
    }

    /// Bandwidth factor for a migration from `a` to `b`.
    #[inline]
    pub fn bandwidth_factor(&self, a: PmId, b: PmId) -> f64 {
        if self.same_rack(a, b) {
            1.0
        } else {
            self.inter_rack_bw_factor
        }
    }

    /// Number of racks with at least one active PM — each needs its ToR
    /// switch powered ("switch off network switches" is only possible for
    /// fully asleep racks).
    pub fn active_racks(&self, dc: &DataCenter) -> usize {
        let racks = self.rack_count(dc.n_pms());
        let mut active = vec![false; racks];
        for pm in dc.pms() {
            if pm.is_active() {
                active[self.rack_of(pm.id()).0 as usize] = true;
            }
        }
        active.iter().filter(|&&a| a).count()
    }

    /// Instantaneous switch power in watts (active racks × per-switch
    /// draw).
    pub fn switch_power_w(&self, dc: &DataCenter) -> f64 {
        self.active_racks(dc) as f64 * self.switch_watts
    }

    /// Active PMs per rack.
    pub fn rack_occupancy(&self, dc: &DataCenter) -> Vec<usize> {
        let racks = self.rack_count(dc.n_pms());
        let mut occ = vec![0usize; racks];
        for pm in dc.pms() {
            if pm.is_active() {
                occ[self.rack_of(pm.id()).0 as usize] += 1;
            }
        }
        occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenter::DataCenterConfig;
    use crate::ids::VmId;
    use crate::resources::Resources;
    use crate::vm::VmSpec;

    fn topo() -> Topology {
        Topology {
            pms_per_rack: 4,
            inter_rack_bw_factor: 0.25,
            switch_watts: 150.0,
        }
    }

    #[test]
    fn rack_mapping_is_contiguous() {
        let t = topo();
        assert_eq!(t.rack_of(PmId(0)), RackId(0));
        assert_eq!(t.rack_of(PmId(3)), RackId(0));
        assert_eq!(t.rack_of(PmId(4)), RackId(1));
        assert!(t.same_rack(PmId(0), PmId(3)));
        assert!(!t.same_rack(PmId(3), PmId(4)));
    }

    #[test]
    fn rack_count_rounds_up() {
        let t = topo();
        assert_eq!(t.rack_count(8), 2);
        assert_eq!(t.rack_count(9), 3);
        assert_eq!(t.rack_count(1), 1);
    }

    #[test]
    fn rack_members_handles_partial_last_rack() {
        let t = topo();
        let members: Vec<PmId> = t.rack_members(RackId(2), 10).collect();
        assert_eq!(members, vec![PmId(8), PmId(9)]);
    }

    #[test]
    fn bandwidth_penalty_applies_across_racks() {
        let t = topo();
        assert_eq!(t.bandwidth_factor(PmId(0), PmId(1)), 1.0);
        assert_eq!(t.bandwidth_factor(PmId(0), PmId(5)), 0.25);
    }

    #[test]
    fn active_racks_and_switch_power() {
        let t = topo();
        let mut dc = DataCenter::new(DataCenterConfig::paper(8));
        // Keep one VM on PM0 (rack 0); empty the rest and sleep rack 1.
        dc.add_vm(VmSpec::EC2_MICRO);
        dc.place(VmId(0), PmId(0));
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        dc.step(&mut src);
        for i in 1..8 {
            dc.sleep_if_empty(PmId(i));
        }
        assert_eq!(t.active_racks(&dc), 1);
        assert_eq!(t.switch_power_w(&dc), 150.0);
        assert_eq!(t.rack_occupancy(&dc), vec![1, 0]);
    }
}
