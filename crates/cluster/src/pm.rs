//! Physical machine model.
//!
//! PMs are homogeneous HP ProLiant ML110 G5 servers in the paper's
//! evaluation (2660 MIPS CPU, 4 GB memory, 10 Gb/s network). A PM is either
//! `Active` or `Sleeping`; sleeping PMs host no VMs and leave the gossip
//! overlay. Per-PM aggregates of current and average VM demand are cached
//! and maintained incrementally so the per-round hot path never rescans VM
//! lists.

use crate::ids::{PmId, VmId};
use crate::resources::Resources;
use serde::{Deserialize, Serialize};

/// Static description of a PM model in absolute units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmSpec {
    /// CPU capacity in MIPS.
    pub cpu_mips: f64,
    /// Memory capacity in MB.
    pub mem_mb: f64,
    /// Network bandwidth in Mbit/s.
    pub net_mbps: f64,
    /// Idle power draw in watts.
    pub idle_watts: f64,
    /// Full-load power draw in watts.
    pub max_watts: f64,
}

impl PmSpec {
    /// HP ProLiant ML110 G5 as configured in §V-A, with SPECpower-derived
    /// power figures (idle 93.7 W, full load 135 W) as used by the paper's
    /// reference \[10\].
    pub const HP_PROLIANT_ML110_G5: PmSpec = PmSpec {
        cpu_mips: 2660.0,
        mem_mb: 4096.0,
        net_mbps: 10_000.0,
        idle_watts: 93.7,
        max_watts: 135.0,
    };

    /// Capacity as a resource vector in absolute units.
    #[inline]
    pub fn capacity(&self) -> Resources {
        Resources::new(self.cpu_mips, self.mem_mb)
    }
}

/// Power state of a PM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Serving VMs (or idling while switched on).
    Active,
    /// Switched off / suspended; consumes no power and hosts no VMs.
    Sleeping,
}

/// A physical machine: hosted VM set plus cached demand aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pm {
    /// This PM's identifier.
    pub id: PmId,
    /// Power state.
    pub power: PowerState,
    /// Hosted VMs. Order is not meaningful.
    pub vms: Vec<VmId>,
    /// Sum of hosted VMs' *current* demand (fraction of capacity).
    used_current: Resources,
    /// Sum of hosted VMs' *average* demand (fraction of capacity).
    used_avg: Resources,
    /// Rounds spent active (denominator `T_a` of SLAVO).
    pub active_rounds: u64,
    /// Rounds spent with CPU at 100% while active (numerator `T_s`).
    pub saturated_rounds: u64,
}

impl Pm {
    /// Creates an active, empty PM.
    pub fn new(id: PmId) -> Self {
        Pm {
            id,
            power: PowerState::Active,
            vms: Vec::new(),
            used_current: Resources::ZERO,
            used_avg: Resources::ZERO,
            active_rounds: 0,
            saturated_rounds: 0,
        }
    }

    /// `true` when the PM is switched on.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.power == PowerState::Active
    }

    /// Current utilization per resource, as a fraction of capacity, capped
    /// at 1.0 (a PM cannot deliver more than its capacity; excess demand is
    /// what SLA violations measure).
    #[inline]
    pub fn utilization(&self) -> Resources {
        self.used_current.clamp(0.0, 1.0)
    }

    /// Raw aggregate of current VM demand; may exceed 1.0 when overloaded.
    #[inline]
    pub fn demand(&self) -> Resources {
        self.used_current
    }

    /// Aggregate of hosted VMs' running-average demand, capped at 1.0 —
    /// this is the PM-state input of the paper's calibration ("the state of
    /// a PM before performing an action \[is\] calculated according to the
    /// average VMs demand").
    #[inline]
    pub fn avg_utilization(&self) -> Resources {
        self.used_avg.clamp(0.0, 1.0)
    }

    /// Raw aggregate of average demand (may exceed 1.0).
    #[inline]
    pub fn avg_demand(&self) -> Resources {
        self.used_avg
    }

    /// `true` when aggregate current demand reaches capacity in at least
    /// one resource — the paper's overload condition (`x = 1`).
    #[inline]
    pub fn is_overloaded(&self) -> bool {
        self.used_current.any_reaches(Resources::FULL)
    }

    /// `true` when the CPU specifically is saturated (SLAVO condition).
    #[inline]
    pub fn cpu_saturated(&self) -> bool {
        self.used_current.cpu() >= 1.0 - 1e-9
    }

    /// Number of hosted VMs.
    #[inline]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// `true` when the PM hosts no VMs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Registers a VM with the given demand aggregates (placement or
    /// migration in).
    pub(crate) fn attach(&mut self, vm: VmId, current: Resources, avg: Resources) {
        debug_assert!(self.is_active(), "cannot attach a VM to a sleeping PM");
        debug_assert!(!self.vms.contains(&vm));
        self.vms.push(vm);
        self.used_current += current;
        self.used_avg += avg;
    }

    /// Removes a VM with the given demand aggregates (migration out).
    pub(crate) fn detach(&mut self, vm: VmId, current: Resources, avg: Resources) {
        let pos = self
            .vms
            .iter()
            .position(|&v| v == vm)
            .expect("detach of non-hosted VM");
        self.vms.swap_remove(pos);
        self.used_current -= current;
        self.used_avg -= avg;
        if self.vms.is_empty() {
            // Kill accumulated floating-point drift when the PM empties.
            self.used_current = Resources::ZERO;
            self.used_avg = Resources::ZERO;
        }
    }

    /// Replaces the cached aggregates (checkpoint restore, which carries
    /// the exact accumulated values so a resumed run continues
    /// byte-identically).
    pub(crate) fn set_aggregates(&mut self, current: Resources, avg: Resources) {
        self.used_current = current;
        self.used_avg = avg;
    }

    /// Applies one hosted VM's demand change to the cached aggregates —
    /// the O(1) per-VM update [`DataCenter::step`](crate::DataCenter)
    /// uses instead of rescanning every VM list each round. Drift from
    /// repeated addition stays far below the invariant checker's 1e-6
    /// tolerance, and [`Pm::detach`] zeroes the caches whenever the PM
    /// empties.
    pub(crate) fn apply_demand_delta(&mut self, d_current: Resources, d_avg: Resources) {
        self.used_current += d_current;
        self.used_avg += d_avg;
    }

    /// Advances the SLAVO accounting by one round.
    pub(crate) fn tick_sla(&mut self) {
        if self.is_active() {
            self.active_rounds += 1;
            if self.cpu_saturated() {
                self.saturated_rounds += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_pm_is_active_and_empty() {
        let pm = Pm::new(PmId(0));
        assert!(pm.is_active());
        assert!(pm.is_empty());
        assert_eq!(pm.utilization(), Resources::ZERO);
        assert!(!pm.is_overloaded());
    }

    #[test]
    fn attach_detach_maintain_aggregates() {
        let mut pm = Pm::new(PmId(0));
        pm.attach(
            VmId(1),
            Resources::new(0.3, 0.2),
            Resources::new(0.25, 0.15),
        );
        pm.attach(
            VmId(2),
            Resources::new(0.4, 0.1),
            Resources::new(0.35, 0.05),
        );
        assert_eq!(pm.vm_count(), 2);
        assert!((pm.demand().cpu() - 0.7).abs() < 1e-12);
        assert!((pm.avg_demand().cpu() - 0.6).abs() < 1e-12);
        pm.detach(
            VmId(1),
            Resources::new(0.3, 0.2),
            Resources::new(0.25, 0.15),
        );
        assert_eq!(pm.vm_count(), 1);
        assert!((pm.demand().cpu() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn detach_last_vm_zeroes_aggregates() {
        let mut pm = Pm::new(PmId(0));
        pm.attach(VmId(1), Resources::new(0.1, 0.1), Resources::new(0.1, 0.1));
        pm.detach(VmId(1), Resources::new(0.1, 0.1), Resources::new(0.1, 0.1));
        assert_eq!(pm.demand(), Resources::ZERO);
        assert_eq!(pm.avg_demand(), Resources::ZERO);
    }

    #[test]
    fn overload_on_any_resource() {
        let mut pm = Pm::new(PmId(0));
        pm.attach(VmId(1), Resources::new(0.5, 1.0), Resources::ZERO);
        assert!(pm.is_overloaded());
        assert!(!pm.cpu_saturated());
    }

    #[test]
    fn utilization_is_capped_but_demand_is_not() {
        let mut pm = Pm::new(PmId(0));
        pm.attach(VmId(1), Resources::new(1.4, 0.5), Resources::ZERO);
        assert_eq!(pm.utilization().cpu(), 1.0);
        assert!((pm.demand().cpu() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn sla_ticks_count_saturation_only_when_active() {
        let mut pm = Pm::new(PmId(0));
        pm.attach(VmId(1), Resources::new(1.0, 0.2), Resources::ZERO);
        pm.tick_sla();
        assert_eq!(pm.active_rounds, 1);
        assert_eq!(pm.saturated_rounds, 1);
        pm.power = PowerState::Sleeping;
        pm.tick_sla();
        assert_eq!(pm.active_rounds, 1);
    }

    #[test]
    #[should_panic(expected = "detach of non-hosted VM")]
    fn detach_unknown_vm_panics() {
        let mut pm = Pm::new(PmId(0));
        pm.detach(VmId(5), Resources::ZERO, Resources::ZERO);
    }

    #[test]
    fn spec_capacity_vector() {
        let cap = PmSpec::HP_PROLIANT_ML110_G5.capacity();
        assert_eq!(cap, Resources::new(2660.0, 4096.0));
    }
}
