//! Physical machine model, stored struct-of-arrays.
//!
//! PMs are homogeneous HP ProLiant ML110 G5 servers in the paper's
//! evaluation (2660 MIPS CPU, 4 GB memory, 10 Gb/s network). A PM is either
//! `Active` or `Sleeping`; sleeping PMs host no VMs and leave the gossip
//! overlay. Per-PM aggregates of current and average VM demand are cached
//! and maintained incrementally so the per-round hot path never rescans VM
//! lists.
//!
//! At 100k+ PMs, one heap object per machine dominates both memory and
//! cache traffic, so PM state lives in [`PmStore`]: parallel flat arrays
//! for power state, demand aggregates and SLAVO counters, a CSR-style
//! [arena](crate::arena::PlacementArena) holding every hosted-VM list in
//! one shared slab, and a sorted active-set index that makes "iterate the
//! active PMs" cost O(active), not O(n). Consumers never see the layout:
//! they hold a [`PmRef`] handle with the same accessor vocabulary the old
//! per-PM struct had.

use crate::arena::PlacementArena;
use crate::ids::{PmId, VmId};
use crate::resources::Resources;
use serde::{Deserialize, Serialize};

/// Static description of a PM model in absolute units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmSpec {
    /// CPU capacity in MIPS.
    pub cpu_mips: f64,
    /// Memory capacity in MB.
    pub mem_mb: f64,
    /// Network bandwidth in Mbit/s.
    pub net_mbps: f64,
    /// Idle power draw in watts.
    pub idle_watts: f64,
    /// Full-load power draw in watts.
    pub max_watts: f64,
}

impl PmSpec {
    /// HP ProLiant ML110 G5 as configured in §V-A, with SPECpower-derived
    /// power figures (idle 93.7 W, full load 135 W) as used by the paper's
    /// reference \[10\].
    pub const HP_PROLIANT_ML110_G5: PmSpec = PmSpec {
        cpu_mips: 2660.0,
        mem_mb: 4096.0,
        net_mbps: 10_000.0,
        idle_watts: 93.7,
        max_watts: 135.0,
    };

    /// Capacity as a resource vector in absolute units.
    #[inline]
    pub fn capacity(&self) -> Resources {
        Resources::new(self.cpu_mips, self.mem_mb)
    }
}

/// Power state of a PM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Serving VMs (or idling while switched on).
    Active,
    /// Switched off / suspended; consumes no power and hosts no VMs.
    Sleeping,
}

/// Flat struct-of-arrays storage for every PM's dynamic state.
///
/// Index `i` across all arrays is `PmId(i)`. The placement arena holds
/// the hosted-VM lists; `active` is the sorted event-driven index of
/// switched-on PMs, maintained on every sleep/wake transition so scans
/// and SLA ticks touch only machines that can do work.
#[derive(Debug, Clone)]
pub(crate) struct PmStore {
    power: Vec<PowerState>,
    /// Sum of hosted VMs' *current* demand (fraction of capacity).
    used_current: Vec<Resources>,
    /// Sum of hosted VMs' *average* demand (fraction of capacity).
    used_avg: Vec<Resources>,
    /// Rounds spent active (denominator `T_a` of SLAVO).
    active_rounds: Vec<u64>,
    /// Rounds spent with CPU at 100% while active (numerator `T_s`).
    saturated_rounds: Vec<u64>,
    /// Every PM's hosted-VM list, in one flat slab.
    placement: PlacementArena,
    /// Ids of active PMs, sorted ascending — the same order the old
    /// full-population filter produced, so shuffles seeded from this
    /// list draw identically.
    active: Vec<PmId>,
    /// Dedup flags for `dirty`: `dirty_flags[i]` ⇔ `PmId(i)` is queued.
    dirty_flags: Vec<bool>,
    /// PMs whose *eligibility inputs* (power state or demand aggregates)
    /// changed since the last [`clear_dirty`](Self::clear_dirty) — the
    /// event-driven feed of the learning-eligibility index. Every
    /// mutation funnel marks here; order is unspecified (consumers
    /// recompute per-PM flags, never iterate in a seeded order).
    dirty: Vec<PmId>,
}

impl PmStore {
    /// `n` active, empty PMs.
    pub(crate) fn new(n: usize) -> Self {
        PmStore {
            power: vec![PowerState::Active; n],
            used_current: vec![Resources::ZERO; n],
            used_avg: vec![Resources::ZERO; n],
            active_rounds: vec![0; n],
            saturated_rounds: vec![0; n],
            placement: PlacementArena::new(n),
            active: (0..n).map(|i| PmId(i as u32)).collect(),
            dirty_flags: vec![false; n],
            dirty: Vec::new(),
        }
    }

    /// Queues `i` for eligibility recomputation (dedup'd).
    #[inline]
    fn mark_dirty(&mut self, i: usize) {
        if !self.dirty_flags[i] {
            self.dirty_flags[i] = true;
            self.dirty.push(PmId(i as u32));
        }
    }

    /// PMs dirtied since the last [`clear_dirty`](Self::clear_dirty).
    #[inline]
    pub(crate) fn dirty_ids(&self) -> &[PmId] {
        &self.dirty
    }

    /// Empties the dirty queue (after the consumer recomputed the
    /// queued PMs).
    pub(crate) fn clear_dirty(&mut self) {
        for k in 0..self.dirty.len() {
            self.dirty_flags[self.dirty[k].index()] = false;
        }
        self.dirty.clear();
    }

    /// Number of PMs.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.power.len()
    }

    /// Read handle for PM `id`.
    #[inline]
    pub(crate) fn pm(&self, id: PmId) -> PmRef<'_> {
        PmRef { store: self, id }
    }

    /// The sorted active-set index.
    #[inline]
    pub(crate) fn active_ids(&self) -> &[PmId] {
        &self.active
    }

    #[inline]
    pub(crate) fn is_active(&self, i: usize) -> bool {
        self.power[i] == PowerState::Active
    }

    /// Registers a VM with the given demand aggregates (placement or
    /// migration in).
    pub(crate) fn attach(&mut self, pm: PmId, vm: VmId, current: Resources, avg: Resources) {
        let i = pm.index();
        debug_assert!(self.is_active(i), "cannot attach a VM to a sleeping PM");
        debug_assert!(self.placement.position(i, vm).is_none());
        self.placement.push(i, vm);
        self.used_current[i] += current;
        self.used_avg[i] += avg;
        self.mark_dirty(i);
    }

    /// Removes a VM with the given demand aggregates (migration out).
    pub(crate) fn detach(&mut self, pm: PmId, vm: VmId, current: Resources, avg: Resources) {
        let i = pm.index();
        let pos = self
            .placement
            .position(i, vm)
            .expect("detach of non-hosted VM");
        self.placement.swap_remove(i, pos);
        self.used_current[i] -= current;
        self.used_avg[i] -= avg;
        if self.placement.len(i) == 0 {
            // Kill accumulated floating-point drift when the PM empties.
            self.used_current[i] = Resources::ZERO;
            self.used_avg[i] = Resources::ZERO;
        }
        self.mark_dirty(i);
    }

    /// Replaces the cached aggregates (checkpoint restore, which carries
    /// the exact accumulated values so a resumed run continues
    /// byte-identically).
    pub(crate) fn set_aggregates(&mut self, pm: PmId, current: Resources, avg: Resources) {
        self.used_current[pm.index()] = current;
        self.used_avg[pm.index()] = avg;
        self.mark_dirty(pm.index());
    }

    /// Applies one hosted VM's demand change to the cached aggregates —
    /// the O(1) per-VM update [`DataCenter::step`](crate::DataCenter)
    /// uses instead of rescanning every VM list each round. Drift from
    /// repeated addition stays far below the invariant checker's 1e-6
    /// tolerance, and [`PmStore::detach`] zeroes the caches whenever the
    /// PM empties.
    pub(crate) fn apply_demand_delta(&mut self, pm: PmId, d_current: Resources, d_avg: Resources) {
        self.used_current[pm.index()] += d_current;
        self.used_avg[pm.index()] += d_avg;
        self.mark_dirty(pm.index());
    }

    /// Advances the SLAVO accounting by one round. Sleeping PMs tick
    /// nothing, so only the active set is visited — the event-driven
    /// idle path that keeps a mostly-consolidated 100k-PM fleet cheap.
    pub(crate) fn tick_sla_active(&mut self) {
        for k in 0..self.active.len() {
            let i = self.active[k].index();
            self.active_rounds[i] += 1;
            if self.used_current[i].cpu() >= 1.0 - 1e-9 {
                self.saturated_rounds[i] += 1;
            }
        }
    }

    /// Transitions an active PM to sleep, maintaining the active index.
    pub(crate) fn sleep(&mut self, pm: PmId) {
        debug_assert!(self.is_active(pm.index()));
        self.power[pm.index()] = PowerState::Sleeping;
        if let Ok(pos) = self.active.binary_search(&pm) {
            self.active.remove(pos);
        }
        self.mark_dirty(pm.index());
    }

    /// Transitions a sleeping PM to active, maintaining the active index.
    pub(crate) fn wake(&mut self, pm: PmId) {
        debug_assert!(!self.is_active(pm.index()));
        self.power[pm.index()] = PowerState::Active;
        if let Err(pos) = self.active.binary_search(&pm) {
            self.active.insert(pos, pm);
        }
        self.mark_dirty(pm.index());
    }

    /// Overwrites a PM's power state without index maintenance; callers
    /// must finish with [`PmStore::rebuild_active`] (checkpoint restore).
    pub(crate) fn set_power_raw(&mut self, pm: PmId, power: PowerState) {
        self.power[pm.index()] = power;
        self.mark_dirty(pm.index());
    }

    /// Sets the SLAVO counters directly (checkpoint restore).
    pub(crate) fn set_sla_counters(&mut self, pm: PmId, active_rounds: u64, saturated_rounds: u64) {
        self.active_rounds[pm.index()] = active_rounds;
        self.saturated_rounds[pm.index()] = saturated_rounds;
    }

    /// Rebuilds the sorted active index from the power array.
    pub(crate) fn rebuild_active(&mut self) {
        self.active = (0..self.len())
            .filter(|&i| self.is_active(i))
            .map(|i| PmId(i as u32))
            .collect();
    }

    /// Empties every placement list (checkpoint restore repopulates them
    /// in snapshot order).
    pub(crate) fn reset_placements(&mut self) {
        self.placement.reset();
    }

    /// Appends a VM to a placement list *without* touching the demand
    /// aggregates (checkpoint restore, which sets the aggregates from the
    /// snapshot's exact accumulated values instead of re-summing).
    pub(crate) fn push_placement_raw(&mut self, pm: PmId, vm: VmId) {
        self.placement.push(pm.index(), vm);
    }

    /// Structural self-check of the SoA layout: the active index must
    /// mirror the power array exactly (sorted, no extras, no omissions)
    /// and the placement arena must account for its whole slab.
    pub(crate) fn check(&self) -> Result<(), String> {
        let mut expect = 0usize;
        for (k, &pm) in self.active.iter().enumerate() {
            if k > 0 && self.active[k - 1] >= pm {
                return Err(format!("active index not sorted at position {k}"));
            }
            if !self.is_active(pm.index()) {
                return Err(format!("active index lists sleeping {pm}"));
            }
        }
        for i in 0..self.len() {
            if self.is_active(i) {
                expect += 1;
            }
        }
        if expect != self.active.len() {
            return Err(format!(
                "active index has {} entries, power array says {expect}",
                self.active.len()
            ));
        }
        self.placement.check()
    }
}

/// A borrowed, `Copy` read handle onto one PM's slice of the
/// struct-of-arrays store — the accessor API policies compile against.
///
/// Everything the old per-PM struct exposed is a method here;
/// [`PmRef::vms`] returns the hosted-VM list as a slice into the shared
/// placement slab, living as long as the underlying borrow (not the
/// handle), so `dc.pm(p).vms()` composes like a field access did.
#[derive(Clone, Copy)]
pub struct PmRef<'a> {
    store: &'a PmStore,
    id: PmId,
}

impl<'a> PmRef<'a> {
    /// This PM's identifier.
    #[inline]
    pub fn id(self) -> PmId {
        self.id
    }

    /// Power state.
    #[inline]
    pub fn power(self) -> PowerState {
        self.store.power[self.id.index()]
    }

    /// `true` when the PM is switched on.
    #[inline]
    pub fn is_active(self) -> bool {
        self.power() == PowerState::Active
    }

    /// Hosted VMs. Order is not meaningful.
    #[inline]
    pub fn vms(self) -> &'a [VmId] {
        self.store.placement.slice(self.id.index())
    }

    /// Current utilization per resource, as a fraction of capacity, capped
    /// at 1.0 (a PM cannot deliver more than its capacity; excess demand is
    /// what SLA violations measure).
    #[inline]
    pub fn utilization(self) -> Resources {
        self.demand().clamp(0.0, 1.0)
    }

    /// Raw aggregate of current VM demand; may exceed 1.0 when overloaded.
    #[inline]
    pub fn demand(self) -> Resources {
        self.store.used_current[self.id.index()]
    }

    /// Aggregate of hosted VMs' running-average demand, capped at 1.0 —
    /// this is the PM-state input of the paper's calibration ("the state of
    /// a PM before performing an action \[is\] calculated according to the
    /// average VMs demand").
    #[inline]
    pub fn avg_utilization(self) -> Resources {
        self.avg_demand().clamp(0.0, 1.0)
    }

    /// Raw aggregate of average demand (may exceed 1.0).
    #[inline]
    pub fn avg_demand(self) -> Resources {
        self.store.used_avg[self.id.index()]
    }

    /// `true` when aggregate current demand reaches capacity in at least
    /// one resource — the paper's overload condition (`x = 1`).
    #[inline]
    pub fn is_overloaded(self) -> bool {
        self.demand().any_reaches(Resources::FULL)
    }

    /// `true` when the CPU specifically is saturated (SLAVO condition).
    #[inline]
    pub fn cpu_saturated(self) -> bool {
        self.demand().cpu() >= 1.0 - 1e-9
    }

    /// Number of hosted VMs.
    #[inline]
    pub fn vm_count(self) -> usize {
        self.store.placement.len(self.id.index())
    }

    /// `true` when the PM hosts no VMs.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.vm_count() == 0
    }

    /// Rounds spent active (denominator `T_a` of SLAVO).
    #[inline]
    pub fn active_rounds(self) -> u64 {
        self.store.active_rounds[self.id.index()]
    }

    /// Rounds spent with CPU at 100% while active (numerator `T_s`).
    #[inline]
    pub fn saturated_rounds(self) -> u64 {
        self.store.saturated_rounds[self.id.index()]
    }
}

impl std::fmt::Debug for PmRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmRef")
            .field("id", &self.id)
            .field("power", &self.power())
            .field("vms", &self.vms())
            .field("demand", &self.demand())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm0(store: &PmStore) -> PmRef<'_> {
        store.pm(PmId(0))
    }

    #[test]
    fn new_pm_is_active_and_empty() {
        let store = PmStore::new(1);
        let pm = pm0(&store);
        assert!(pm.is_active());
        assert!(pm.is_empty());
        assert_eq!(pm.utilization(), Resources::ZERO);
        assert!(!pm.is_overloaded());
    }

    #[test]
    fn attach_detach_maintain_aggregates() {
        let mut store = PmStore::new(1);
        store.attach(
            PmId(0),
            VmId(1),
            Resources::new(0.3, 0.2),
            Resources::new(0.25, 0.15),
        );
        store.attach(
            PmId(0),
            VmId(2),
            Resources::new(0.4, 0.1),
            Resources::new(0.35, 0.05),
        );
        assert_eq!(pm0(&store).vm_count(), 2);
        assert!((pm0(&store).demand().cpu() - 0.7).abs() < 1e-12);
        assert!((pm0(&store).avg_demand().cpu() - 0.6).abs() < 1e-12);
        store.detach(
            PmId(0),
            VmId(1),
            Resources::new(0.3, 0.2),
            Resources::new(0.25, 0.15),
        );
        assert_eq!(pm0(&store).vm_count(), 1);
        assert!((pm0(&store).demand().cpu() - 0.4).abs() < 1e-12);
        store.check().unwrap();
    }

    #[test]
    fn detach_last_vm_zeroes_aggregates() {
        let mut store = PmStore::new(1);
        store.attach(
            PmId(0),
            VmId(1),
            Resources::new(0.1, 0.1),
            Resources::new(0.1, 0.1),
        );
        store.detach(
            PmId(0),
            VmId(1),
            Resources::new(0.1, 0.1),
            Resources::new(0.1, 0.1),
        );
        assert_eq!(pm0(&store).demand(), Resources::ZERO);
        assert_eq!(pm0(&store).avg_demand(), Resources::ZERO);
    }

    #[test]
    fn overload_on_any_resource() {
        let mut store = PmStore::new(1);
        store.attach(PmId(0), VmId(1), Resources::new(0.5, 1.0), Resources::ZERO);
        assert!(pm0(&store).is_overloaded());
        assert!(!pm0(&store).cpu_saturated());
    }

    #[test]
    fn utilization_is_capped_but_demand_is_not() {
        let mut store = PmStore::new(1);
        store.attach(PmId(0), VmId(1), Resources::new(1.4, 0.5), Resources::ZERO);
        assert_eq!(pm0(&store).utilization().cpu(), 1.0);
        assert!((pm0(&store).demand().cpu() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn sla_ticks_count_saturation_only_when_active() {
        let mut store = PmStore::new(2);
        store.attach(PmId(0), VmId(1), Resources::new(1.0, 0.2), Resources::ZERO);
        store.tick_sla_active();
        assert_eq!(pm0(&store).active_rounds(), 1);
        assert_eq!(pm0(&store).saturated_rounds(), 1);
        // An emptied, slept PM stops ticking entirely.
        store.sleep(PmId(1));
        store.tick_sla_active();
        assert_eq!(store.pm(PmId(1)).active_rounds(), 1);
        assert_eq!(pm0(&store).active_rounds(), 2);
    }

    #[test]
    fn sleep_wake_maintain_sorted_active_index() {
        let mut store = PmStore::new(5);
        store.sleep(PmId(3));
        store.sleep(PmId(1));
        assert_eq!(
            store.active_ids(),
            &[PmId(0), PmId(2), PmId(4)],
            "active index stays sorted ascending"
        );
        store.wake(PmId(3));
        assert_eq!(store.active_ids(), &[PmId(0), PmId(2), PmId(3), PmId(4)]);
        store.check().unwrap();
    }

    #[test]
    #[should_panic(expected = "detach of non-hosted VM")]
    fn detach_unknown_vm_panics() {
        let mut store = PmStore::new(1);
        store.detach(PmId(0), VmId(5), Resources::ZERO, Resources::ZERO);
    }

    #[test]
    fn spec_capacity_vector() {
        let cap = PmSpec::HP_PROLIANT_ML110_G5.capacity();
        assert_eq!(cap, Resources::new(2660.0, 4096.0));
    }
}
