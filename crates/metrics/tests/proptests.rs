//! Property-based tests for statistics and metric aggregation.

use glap_metrics::*;
use proptest::prelude::*;

proptest! {
    /// Quantiles are monotone in q and bounded by the sample extremes.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// p10 ≤ median ≤ p90 always.
    #[test]
    fn order_statistics_are_ordered(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let (p10, med, p90) = p10_median_p90(&xs);
        prop_assert!(p10 <= med && med <= p90);
    }

    /// Mean and variance satisfy the shift/scale laws.
    #[test]
    fn mean_variance_affine_laws(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..100),
        shift in -50.0f64..50.0,
        scale in 0.1f64..10.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        prop_assert!((mean(&shifted) - (mean(&xs) * scale + shift)).abs() < 1e-6);
        prop_assert!((variance(&shifted) - variance(&xs) * scale * scale).abs() < 1e-4);
    }

    /// Cosine similarity is scale-invariant for positive scales.
    #[test]
    fn cosine_is_scale_invariant(
        xs in proptest::collection::vec(-10.0f64..10.0, 1..50),
        scale in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let sim = cosine_similarity(&xs, &scaled);
        if xs.iter().any(|&x| x != 0.0) {
            prop_assert!((sim - 1.0).abs() < 1e-9, "sim {sim}");
        } else {
            prop_assert_eq!(sim, 1.0);
        }
    }

    /// Skewness is antisymmetric under negation; kurtosis is symmetric.
    #[test]
    fn moment_symmetries(xs in proptest::collection::vec(-100.0f64..100.0, 4..100)) {
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        prop_assert!((skewness(&xs) + skewness(&neg)).abs() < 1e-6);
        prop_assert!((excess_kurtosis(&xs) - excess_kurtosis(&neg)).abs() < 1e-6);
    }

    /// Jarque–Bera is non-negative.
    #[test]
    fn jarque_bera_non_negative(xs in proptest::collection::vec(-100.0f64..100.0, 4..100)) {
        prop_assert!(jarque_bera(&xs) >= 0.0);
    }

    /// Collector aggregates agree with direct recomputation from samples.
    #[test]
    fn collector_aggregates_match_series(
        rows in proptest::collection::vec((0usize..50, 0usize..50, 0usize..20, 0.0f64..100.0), 1..60),
    ) {
        let mut c = MetricsCollector::new();
        for (i, &(active, over_raw, mig, e)) in rows.iter().enumerate() {
            let over = over_raw.min(active);
            c.samples.push(RoundSample {
                round: i as u64,
                active_pms: active,
                overloaded_pms: over,
                migrations: mig,
                migration_energy_j: e,
                wake_ups: 0,
            });
        }
        let total: u64 = rows.iter().map(|r| r.2 as u64).sum();
        prop_assert_eq!(c.total_migrations(), total);
        let cum = c.cumulative_migrations();
        prop_assert_eq!(*cum.last().unwrap(), total);
        // Cumulative series is non-decreasing.
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        // Overloaded fraction within [0, 1].
        let f = c.mean_overloaded_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
