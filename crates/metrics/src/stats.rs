//! Statistics helpers: order statistics for the paper's median/p10/p90
//! reporting, moments, cosine similarity, and the normality diagnostics
//! used to check Theorem 1 (the gossip-aggregated Q-values tend to a
//! normal distribution).

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for fewer than 2 samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation between order
/// statistics. Returns 0 for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median (0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The paper's standard summary: `(p10, median, p90)`.
pub fn p10_median_p90(xs: &[f64]) -> (f64, f64, f64) {
    (quantile(xs, 0.1), median(xs), quantile(xs, 0.9))
}

/// Cosine similarity of two equal-length vectors. Both-zero → 1, one-zero
/// → 0.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..a.len() {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if na == 0.0 && nb == 0.0 {
        1.0
    } else if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Sample skewness (third standardized moment).
pub fn skewness(xs: &[f64]) -> f64 {
    let s = std_dev(xs);
    if xs.len() < 3 || s == 0.0 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / xs.len() as f64
}

/// Excess kurtosis (fourth standardized moment minus 3; 0 for a normal).
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    let s = std_dev(xs);
    if xs.len() < 4 || s == 0.0 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / xs.len() as f64 - 3.0
}

/// The Jarque–Bera statistic: `n/6 · (skew² + kurt²/4)`. Under normality
/// it is χ²(2)-distributed; small values (≲ 6 for the 5% level) are
/// consistent with a normal distribution. Used to verify Theorem 1
/// empirically.
pub fn jarque_bera(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let s = skewness(xs);
    let k = excess_kurtosis(xs);
    n / 6.0 * (s * s + k * k / 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        let (p10, med, p90) = p10_median_p90(&xs);
        assert!(p10 < med && med < p90);
    }

    #[test]
    fn quantile_is_order_independent() {
        let a = [5.0, 1.0, 3.0];
        let b = [1.0, 3.0, 5.0];
        assert_eq!(median(&a), median(&b));
    }

    #[test]
    fn cosine_basic_cases() {
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]), -1.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
    }

    #[test]
    fn right_tail_has_positive_skew() {
        let xs = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&xs) > 1.0);
    }

    #[test]
    fn uniform_has_negative_excess_kurtosis() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        // Uniform distribution: excess kurtosis = -1.2.
        assert!((excess_kurtosis(&xs) + 1.2).abs() < 0.05);
    }

    #[test]
    fn jarque_bera_small_for_normal_like_large_for_skewed() {
        // A discrete approximation of a normal via the CLT: sums of
        // uniforms (Irwin–Hall with n=12, standardized).
        let mut xs = Vec::new();
        let mut state = 88172645463325252u64;
        let mut next = || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..2000 {
            let s: f64 = (0..12).map(|_| next()).sum::<f64>() - 6.0;
            xs.push(s);
        }
        let jb_normal = jarque_bera(&xs);
        let skewed: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        let jb_skewed = jarque_bera(&skewed);
        assert!(jb_normal < 15.0, "JB for normal-ish data: {jb_normal}");
        assert!(jb_skewed > 100.0, "JB for lognormal data: {jb_skewed}");
    }
}
