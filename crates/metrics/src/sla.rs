//! The paper's SLA metrics (§V-B, after Beloglazov & Buyya):
//!
//! ```text
//! SLAVO = (1/N) Σ_i  T_s_i / T_a_i      — fraction of active time at 100% CPU
//! SLALM = (1/M) Σ_j  C_d_j / C_r_j      — migration-induced degradation share
//! SLAV  = SLAVO · SLALM
//! ```
//!
//! `T_s` and `T_a` are accumulated per PM by the substrate's SLA ticks;
//! `C_d` (10% of CPU utilization during each migration) and `C_r` (total
//! requested CPU) are accumulated per VM by the migration model.

use glap_cluster::DataCenter;
use serde::{Deserialize, Serialize};

/// The three SLA figures of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlaMetrics {
    /// SLA violation from host overload (time at 100% CPU).
    pub slavo: f64,
    /// SLA violation from live-migration degradation.
    pub slalm: f64,
    /// Combined metric `SLAVO × SLALM`.
    pub slav: f64,
}

/// Computes the SLA metrics over the current accumulated counters of a
/// data center. PMs that were never active and VMs that never requested
/// CPU contribute zero terms.
pub fn sla_metrics(dc: &DataCenter) -> SlaMetrics {
    let mut slavo_sum = 0.0;
    let mut n = 0usize;
    for pm in dc.pms() {
        if pm.active_rounds() > 0 {
            slavo_sum += pm.saturated_rounds() as f64 / pm.active_rounds() as f64;
            n += 1;
        }
    }
    let slavo = if n == 0 { 0.0 } else { slavo_sum / n as f64 };

    let mut slalm_sum = 0.0;
    let mut m = 0usize;
    for vm in dc.vms() {
        if vm.cpu_requested_mips_s > 0.0 {
            slalm_sum += vm.cpu_degraded_mips_s / vm.cpu_requested_mips_s;
            m += 1;
        }
    }
    let slalm = if m == 0 { 0.0 } else { slalm_sum / m as f64 };

    SlaMetrics {
        slavo,
        slalm,
        slav: slavo * slalm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, PmId, Resources, VmId, VmSpec};

    fn dc(n_pms: usize, n_vms: usize) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_vms {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc
    }

    #[test]
    fn no_history_means_zero_sla() {
        let d = dc(2, 2);
        let m = sla_metrics(&d);
        assert_eq!(m, SlaMetrics::default());
    }

    #[test]
    fn saturation_produces_slavo() {
        let mut d = dc(1, 8);
        for i in 0..8 {
            d.place(VmId(i), PmId(0));
        }
        // 8 VMs fully loaded: CPU = 8·500/2660 ≈ 1.5 → saturated.
        let mut hot = |_: VmId, _: u64| Resources::new(1.0, 0.2);
        d.step(&mut hot);
        let mut cold = |_: VmId, _: u64| Resources::new(0.1, 0.1);
        d.step(&mut cold);
        let m = sla_metrics(&d);
        // 1 of 2 active rounds saturated → SLAVO = 0.5, no migrations →
        // SLALM = 0 → SLAV = 0.
        assert!((m.slavo - 0.5).abs() < 1e-12);
        assert_eq!(m.slalm, 0.0);
        assert_eq!(m.slav, 0.0);
    }

    #[test]
    fn migrations_produce_slalm() {
        let mut d = dc(2, 1);
        d.place(VmId(0), PmId(0));
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        d.step(&mut src);
        d.migrate(VmId(0), PmId(1)).unwrap();
        let m = sla_metrics(&d);
        assert!(m.slalm > 0.0);
        // SLAVO is zero (never saturated) → combined SLAV zero.
        assert_eq!(m.slav, 0.0);
    }

    #[test]
    fn combined_slav_requires_both() {
        let mut d = dc(1, 8);
        for i in 0..8 {
            d.place(VmId(i), PmId(0));
        }
        let mut hot = |_: VmId, _: u64| Resources::new(1.0, 0.2);
        d.step(&mut hot);
        // Can't migrate to self with 1 PM; extend: rebuild with 2 PMs.
        let mut d = dc(2, 8);
        for i in 0..8 {
            d.place(VmId(i), PmId(0));
        }
        let mut hot = |_: VmId, _: u64| Resources::new(1.0, 0.2);
        d.step(&mut hot);
        d.migrate(VmId(0), PmId(1)).unwrap();
        let m = sla_metrics(&d);
        assert!(m.slavo > 0.0);
        assert!(m.slalm > 0.0);
        assert!((m.slav - m.slavo * m.slalm).abs() < 1e-15);
    }

    #[test]
    fn more_migrations_increase_slalm() {
        let migrations_to_slalm = |k: u32| {
            let mut d = dc(2, 1);
            d.place(VmId(0), PmId(0));
            let mut src = |_: VmId, _: u64| Resources::splat(0.5);
            d.step(&mut src);
            for i in 0..k {
                let to = if i % 2 == 0 { PmId(1) } else { PmId(0) };
                d.migrate(VmId(0), to).unwrap();
            }
            sla_metrics(&d).slalm
        };
        assert!(migrations_to_slalm(4) > migrations_to_slalm(1));
    }
}
