//! # glap-metrics — evaluation metrics of the GLAP paper
//!
//! Everything §V-B measures:
//!
//! * [`sla`] — SLAVO (time at 100% CPU), SLALM (migration degradation) and
//!   the combined SLAV of Table I;
//! * [`collector`] — the per-round series behind Figures 6–10 (active PMs,
//!   overloaded PMs, migrations, migration energy), sampled through the
//!   engine's observer hook;
//! * [`stats`] — order statistics (the paper reports median/p10/p90),
//!   cosine similarity, and the skewness/kurtosis/Jarque–Bera diagnostics
//!   used to verify Theorem 1's convergence-to-normal claim.

pub mod collector;
pub mod sla;
pub mod stats;

pub use collector::{MetricsCollector, RoundSample, RunResult};
pub use sla::{sla_metrics, SlaMetrics};
pub use stats::{
    cosine_similarity, excess_kurtosis, jarque_bera, mean, median, p10_median_p90, quantile,
    skewness, std_dev, variance,
};
