//! Per-round metric collection.
//!
//! `MetricsCollector` implements the engine's [`glap_dcsim::Observer`] and
//! samples, at the end of every round, exactly the series the paper's
//! figures plot: active PMs, overloaded PMs, migrations and their energy
//! overhead. Summaries expose the paper's (p10, median, p90) statistics.

use crate::sla::{sla_metrics, SlaMetrics};
use crate::stats::p10_median_p90;
use glap_cluster::DataCenter;
use glap_dcsim::Observer;
use serde::{Deserialize, Serialize};

/// One round's sampled values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundSample {
    /// Round index.
    pub round: u64,
    /// Active (switched-on) PMs.
    pub active_pms: usize,
    /// Active PMs with demand at/over capacity in some resource.
    pub overloaded_pms: usize,
    /// Migrations performed during this round.
    pub migrations: usize,
    /// Energy overhead of this round's migrations, joules.
    pub migration_energy_j: f64,
    /// Sleeping→active PM transitions during this round (server
    /// reactivations — the cost side of aggressive consolidation).
    pub wake_ups: usize,
}

/// Collects per-round series over a full simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsCollector {
    /// All sampled rounds, in order.
    pub samples: Vec<RoundSample>,
}

impl MetricsCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-round overloaded-PM counts as `f64` (for order statistics).
    pub fn overloaded_series(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| s.overloaded_pms as f64)
            .collect()
    }

    /// Per-round migration counts.
    pub fn migration_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.migrations as f64).collect()
    }

    /// Per-round active-PM counts.
    pub fn active_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.active_pms as f64).collect()
    }

    /// Cumulative migrations after each round (Figure 9's series).
    pub fn cumulative_migrations(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.samples
            .iter()
            .map(|s| {
                total += s.migrations as u64;
                total
            })
            .collect()
    }

    /// Total migrations over the run.
    pub fn total_migrations(&self) -> u64 {
        self.samples.iter().map(|s| s.migrations as u64).sum()
    }

    /// Total migration energy overhead over the run, joules.
    pub fn total_migration_energy_j(&self) -> f64 {
        self.samples.iter().map(|s| s.migration_energy_j).sum()
    }

    /// Per-round wake-up counts.
    pub fn wake_up_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.wake_ups as f64).collect()
    }

    /// Total sleeping→active transitions over the run.
    pub fn total_wake_ups(&self) -> u64 {
        self.samples.iter().map(|s| s.wake_ups as u64).sum()
    }

    /// `(p10, median, p90)` of the per-round overloaded-PM counts —
    /// Figure 7's bars.
    pub fn overloaded_summary(&self) -> (f64, f64, f64) {
        p10_median_p90(&self.overloaded_series())
    }

    /// `(p10, median, p90)` of the per-round migration counts — Figure 8.
    pub fn migration_summary(&self) -> (f64, f64, f64) {
        p10_median_p90(&self.migration_series())
    }

    /// Mean fraction of overloaded over active PMs (Figure 6's ratio).
    pub fn mean_overloaded_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let fr: f64 = self
            .samples
            .iter()
            .map(|s| {
                if s.active_pms == 0 {
                    0.0
                } else {
                    s.overloaded_pms as f64 / s.active_pms as f64
                }
            })
            .sum();
        fr / self.samples.len() as f64
    }

    /// Mean active-PM count over the run.
    pub fn mean_active_pms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.active_pms as f64)
            .sum::<f64>()
            / self.samples.len() as f64
    }
}

impl glap_snapshot::Checkpointable for MetricsCollector {
    /// Serializes every sampled round, so a resumed run's CSV output
    /// includes the pre-checkpoint rounds byte for byte.
    fn save(&self, w: &mut glap_snapshot::Writer) {
        w.put_usize(self.samples.len());
        for s in &self.samples {
            w.put_u64(s.round);
            w.put_usize(s.active_pms);
            w.put_usize(s.overloaded_pms);
            w.put_usize(s.migrations);
            w.put_f64(s.migration_energy_j);
            w.put_usize(s.wake_ups);
        }
    }

    fn restore(
        &mut self,
        r: &mut glap_snapshot::Reader<'_>,
    ) -> Result<(), glap_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(RoundSample {
                round: r.get_u64()?,
                active_pms: r.get_usize()?,
                overloaded_pms: r.get_usize()?,
                migrations: r.get_usize()?,
                migration_energy_j: r.get_f64()?,
                wake_ups: r.get_usize()?,
            });
        }
        self.samples = samples;
        Ok(())
    }
}

impl Observer for MetricsCollector {
    fn on_round_end(&mut self, round: u64, dc: &mut DataCenter) {
        let migrations = dc.take_migrations();
        let wake_ups = dc.take_wake_ups();
        self.samples.push(RoundSample {
            round,
            active_pms: dc.active_pm_count(),
            overloaded_pms: dc.overloaded_pm_count(),
            migrations: migrations.len(),
            migration_energy_j: migrations.iter().map(|m| m.energy_j).sum(),
            wake_ups,
        });
    }
}

/// End-of-run result bundle: the collector series plus final SLA metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Algorithm name as reported by the policy.
    pub algorithm: String,
    /// Per-round series.
    pub collector: MetricsCollector,
    /// Final SLA metrics.
    pub sla: SlaMetrics,
    /// Offline BFD baseline over the final round's demands (Figure 6's
    /// reference line), filled by the harness.
    pub bfd_bins: usize,
    /// Total sleeping→active PM transitions over the run.
    pub wake_ups: u64,
}

impl RunResult {
    /// Assembles a result from a finished run.
    pub fn from_run(algorithm: &str, collector: MetricsCollector, dc: &DataCenter) -> Self {
        let wake_ups = collector.total_wake_ups();
        RunResult {
            algorithm: algorithm.to_string(),
            collector,
            sla: sla_metrics(dc),
            bfd_bins: 0,
            wake_ups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, PmId, Resources, VmId, VmSpec};

    fn sample(round: u64, active: usize, over: usize, mig: usize, e: f64) -> RoundSample {
        RoundSample {
            round,
            active_pms: active,
            overloaded_pms: over,
            migrations: mig,
            migration_energy_j: e,
            wake_ups: 0,
        }
    }

    #[test]
    fn series_and_totals() {
        let mut c = MetricsCollector::new();
        c.samples.push(sample(0, 10, 2, 3, 5.0));
        c.samples.push(sample(1, 8, 1, 2, 3.0));
        c.samples.push(sample(2, 8, 0, 0, 0.0));
        assert_eq!(c.overloaded_series(), vec![2.0, 1.0, 0.0]);
        assert_eq!(c.cumulative_migrations(), vec![3, 5, 5]);
        assert_eq!(c.total_migrations(), 5);
        assert!((c.total_migration_energy_j() - 8.0).abs() < 1e-12);
        assert!((c.mean_active_pms() - 26.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overloaded_fraction_handles_zero_active() {
        let mut c = MetricsCollector::new();
        c.samples.push(sample(0, 0, 0, 0, 0.0));
        c.samples.push(sample(1, 10, 5, 0, 0.0));
        assert!((c.mean_overloaded_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn observer_records_wake_ups() {
        let mut dc = DataCenter::new(DataCenterConfig::paper(2));
        dc.add_vm(VmSpec::EC2_MICRO);
        dc.place(VmId(0), PmId(0));
        assert!(dc.sleep_if_empty(PmId(1)));
        dc.wake(PmId(1));
        let mut c = MetricsCollector::new();
        c.on_round_end(0, &mut dc);
        assert_eq!(c.samples[0].wake_ups, 1);
        // Drained: a second observation sees none.
        c.on_round_end(1, &mut dc);
        assert_eq!(c.samples[1].wake_ups, 0);
        assert_eq!(c.total_wake_ups(), 1);
        assert_eq!(c.wake_up_series(), vec![1.0, 0.0]);
    }

    #[test]
    fn observer_samples_from_datacenter() {
        let mut dc = DataCenter::new(DataCenterConfig::paper(2));
        for _ in 0..2 {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.place(VmId(0), PmId(0));
        dc.place(VmId(1), PmId(0));
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        dc.step(&mut src);
        dc.migrate(VmId(0), PmId(1)).unwrap();
        let mut c = MetricsCollector::new();
        c.on_round_end(0, &mut dc);
        assert_eq!(c.samples.len(), 1);
        assert_eq!(c.samples[0].active_pms, 2);
        assert_eq!(c.samples[0].migrations, 1);
        assert!(c.samples[0].migration_energy_j > 0.0);
        // Drained: a second observation sees no migrations.
        c.on_round_end(1, &mut dc);
        assert_eq!(c.samples[1].migrations, 0);
    }

    #[test]
    fn summaries_report_order_statistics() {
        let mut c = MetricsCollector::new();
        for (i, &over) in [5usize, 1, 3, 2, 4].iter().enumerate() {
            c.samples.push(sample(i as u64, 10, over, over * 2, 0.0));
        }
        let (p10, med, p90) = c.overloaded_summary();
        assert_eq!(med, 3.0);
        assert!(p10 >= 1.0 && p90 <= 5.0);
        let (_, med_m, _) = c.migration_summary();
        assert_eq!(med_m, 6.0);
    }

    #[test]
    fn checkpoint_round_trips_samples_byte_identically() {
        use glap_snapshot::{Checkpointable, Reader, Writer};
        let mut c = MetricsCollector::new();
        c.samples.push(sample(0, 10, 2, 3, 5.25));
        c.samples.push(sample(1, 8, 1, 2, -0.0));

        let mut w = Writer::new();
        c.save(&mut w);
        let bytes = w.into_bytes();

        let mut twin = MetricsCollector::new();
        twin.restore(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(c.samples, twin.samples);
        let mut w2 = Writer::new();
        twin.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // Truncated records are rejected, never partially loaded.
        let mut broken = MetricsCollector::new();
        broken.samples.push(sample(9, 9, 9, 9, 9.0));
        assert!(broken
            .restore(&mut Reader::new(&bytes[..bytes.len() - 3]))
            .is_err());
        assert_eq!(broken.samples.len(), 1, "failed restore left state alone");
    }

    #[test]
    fn empty_collector_is_all_zero() {
        let c = MetricsCollector::new();
        assert_eq!(c.total_migrations(), 0);
        assert_eq!(c.mean_overloaded_fraction(), 0.0);
        assert_eq!(c.mean_active_pms(), 0.0);
        assert!(c.cumulative_migrations().is_empty());
    }
}
