//! Live stderr progress: per-round heartbeat and sweep-cell ticker.
//!
//! Both write to stderr only — stdout stays reserved for reports and
//! tables, and the byte-compared CSV/JSONL artifacts never see any of
//! this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Minimum gap between heartbeat lines, so a fast small run does not
/// spam the terminal.
const MIN_INTERVAL: Duration = Duration::from_millis(200);

#[derive(Debug)]
struct HbState {
    label: String,
    total: u64,
    started: Instant,
    last_print: Option<Instant>,
}

/// A single-run progress heartbeat: `[label] round 123/720  41.2/s
/// ETA 14s`, rewritten in place on stderr.
#[derive(Debug, Default)]
pub struct Heartbeat {
    inner: Option<HbState>,
}

impl Heartbeat {
    /// A disabled heartbeat: every call is a no-op.
    pub fn off() -> Heartbeat {
        Heartbeat { inner: None }
    }

    /// A live heartbeat for a run of `total` rounds.
    pub fn new(label: &str, total: u64) -> Heartbeat {
        Heartbeat {
            inner: Some(HbState {
                label: label.to_string(),
                total,
                started: Instant::now(),
                last_print: None,
            }),
        }
    }

    /// Whether this heartbeat prints.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Reports `done` rounds complete; prints at most once per 200ms.
    pub fn tick(&mut self, done: u64) {
        let Some(s) = &mut self.inner else { return };
        let now = Instant::now();
        if s.last_print
            .is_some_and(|t| now.duration_since(t) < MIN_INTERVAL)
        {
            return;
        }
        s.last_print = Some(now);
        let elapsed = now.duration_since(s.started).as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        let eta = if rate > 0.0 && done < s.total {
            format!("{:.0}s", (s.total - done) as f64 / rate)
        } else {
            "-".to_string()
        };
        eprint!(
            "\r[{}] round {}/{}  {:.1}/s  ETA {}    ",
            s.label, done, s.total, rate, eta
        );
    }

    /// Ends the heartbeat line (newline on stderr if anything printed).
    pub fn finish(&mut self) {
        if let Some(s) = &self.inner {
            if s.last_print.is_some() {
                eprintln!();
            }
        }
        self.inner = None;
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Sweep-cell progress shared across worker threads: each completed
/// cell logs `[sweep] 7/32 GLAP-500x2-r1  0.8 cells/s  ETA 31s`.
#[derive(Debug)]
pub struct SweepProgress {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    started: Instant,
}

impl SweepProgress {
    /// A ticker over `total` cells; silent unless `enabled`.
    pub fn new(total: usize, enabled: bool) -> SweepProgress {
        SweepProgress {
            enabled,
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Marks one cell finished (thread-safe) and logs progress.
    /// Returns the number of cells completed so far.
    pub fn cell_done(&self, label: &str) -> usize {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled {
            let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
            let rate = done as f64 / elapsed;
            let eta = if done < self.total {
                format!("{:.0}s", (self.total - done) as f64 / rate)
            } else {
                "done".to_string()
            };
            eprintln!(
                "[sweep] {}/{} {}  {:.2} cells/s  ETA {}",
                done, self.total, label, rate, eta
            );
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_heartbeat_is_inert() {
        let mut hb = Heartbeat::off();
        assert!(!hb.is_on());
        hb.tick(5);
        hb.finish();
    }

    #[test]
    fn live_heartbeat_counts_without_panicking() {
        let mut hb = Heartbeat::new("test", 10);
        assert!(hb.is_on());
        for i in 0..10 {
            hb.tick(i);
        }
        hb.finish();
        assert!(!hb.is_on());
    }

    #[test]
    fn sweep_progress_counts_across_threads() {
        let p = SweepProgress::new(8, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    p.cell_done("a");
                    p.cell_done("b");
                });
            }
        });
        assert_eq!(p.done.load(Ordering::Relaxed), 8);
    }
}
