//! Finished profile snapshots: text rendering and the JSON artifact
//! codec.

use crate::json::{self, Json};
use std::fmt::Write as _;

/// Schema tag written into every `profile_*.json`.
const SCHEMA: &str = "glap-profile-v1";

/// Aggregated statistics for one span in the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Leaf name, e.g. `learn_round`.
    pub name: String,
    /// Slash-joined path from the root, e.g. `train/learn_round`.
    pub path: String,
    /// Tree depth; the root `run` span is 0.
    pub depth: usize,
    /// Number of recorded enters (or aggregated occurrences).
    pub count: u64,
    /// Summed nanoseconds across all samples. For the root this is the
    /// wall time from profiler creation to snapshot.
    pub total_ns: u64,
    /// Median over retained samples (0 when no samples).
    pub p50_ns: u64,
    /// 95th percentile over retained samples.
    pub p95_ns: u64,
    /// Largest single sample.
    pub max_ns: u64,
    /// `total_ns` as a percentage of the root span.
    pub pct_of_total: f64,
    /// `total_ns` as a percentage of the parent span.
    pub pct_of_parent: f64,
    /// Samples came from concurrent workers: siblings overlap in wall
    /// time, so this span (and its siblings) may sum past the parent.
    pub concurrent: bool,
}

/// A finished profile: the span tree flattened pre-order.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Wall time covered by the root span, in nanoseconds.
    pub total_ns: u64,
    /// All spans, pre-order; `spans[0]` is the root when non-empty.
    pub spans: Vec<SpanStats>,
}

impl ProfileReport {
    /// Looks a span up by its slash-joined path (relative to the root,
    /// which itself is path `run`).
    pub fn span(&self, path: &str) -> Option<&SpanStats> {
        let full = format!("run/{path}");
        self.spans.iter().find(|s| s.path == full || s.path == path)
    }

    /// Fraction of the root wall time covered by depth-1 spans — the
    /// "phase times sum to ≥ 90% of the run" acceptance metric.
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        let covered: u64 = self
            .spans
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.total_ns)
            .sum();
        covered as f64 / self.total_ns as f64
    }

    /// Renders the indented per-phase breakdown for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "── profile ── total {} ── phase coverage {:.1}% ──",
            fmt_ns(self.total_ns),
            100.0 * self.coverage()
        );
        let _ = writeln!(
            out,
            "{:<38} {:>8} {:>10} {:>6} {:>9} {:>9} {:>9}",
            "span", "count", "total", "% run", "p50", "p95", "max"
        );
        for s in &self.spans {
            if s.depth == 0 {
                continue;
            }
            let indent = "  ".repeat(s.depth - 1);
            let marker = if s.concurrent { "~" } else { "" };
            let _ = writeln!(
                out,
                "{:<38} {:>8} {:>10} {:>5.1}% {:>9} {:>9} {:>9}",
                format!("{indent}{}{marker}", s.name),
                s.count,
                fmt_ns(s.total_ns),
                s.pct_of_total,
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.max_ns),
            );
        }
        if self.spans.iter().any(|s| s.concurrent) {
            let _ = writeln!(out, "(~ concurrent workers: samples overlap in wall time)");
        }
        out
    }

    /// Serializes the report to the `glap-profile-v1` JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"{SCHEMA}\",\"total_ns\":{},\"coverage\":{},\"spans\":[",
            self.total_ns,
            self.coverage()
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":{},\"name\":{},\"depth\":{},\"count\":{},\"total_ns\":{},\
                 \"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{},\"pct_of_total\":{},\
                 \"pct_of_parent\":{},\"concurrent\":{}}}",
                json::escape(&s.path),
                json::escape(&s.name),
                s.depth,
                s.count,
                s.total_ns,
                s.p50_ns,
                s.p95_ns,
                s.max_ns,
                s.pct_of_total,
                s.pct_of_parent,
                s.concurrent,
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses a `glap-profile-v1` JSON artifact back into a report.
    pub fn from_json(text: &str) -> Result<ProfileReport, String> {
        let v = Json::parse(text)?;
        if v.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(format!("not a {SCHEMA} document"));
        }
        let total_ns = v
            .get("total_ns")
            .and_then(Json::as_u64)
            .ok_or("missing total_ns")?;
        let mut spans = Vec::new();
        for s in v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing spans")?
        {
            let str_field = |k: &str| -> Result<String, String> {
                Ok(s.get(k)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("span missing {k}"))?
                    .to_string())
            };
            let u64_field = |k: &str| -> Result<u64, String> {
                s.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("span missing {k}"))
            };
            let f64_field = |k: &str| -> Result<f64, String> {
                s.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("span missing {k}"))
            };
            spans.push(SpanStats {
                path: str_field("path")?,
                name: str_field("name")?,
                depth: u64_field("depth")? as usize,
                count: u64_field("count")?,
                total_ns: u64_field("total_ns")?,
                p50_ns: u64_field("p50_ns")?,
                p95_ns: u64_field("p95_ns")?,
                max_ns: u64_field("max_ns")?,
                pct_of_total: f64_field("pct_of_total")?,
                pct_of_parent: f64_field("pct_of_parent")?,
                concurrent: s.get("concurrent").and_then(Json::as_bool).unwrap_or(false),
            });
        }
        Ok(ProfileReport { total_ns, spans })
    }
}

/// Nearest-rank percentile over an ascending-sorted sample slice.
pub(crate) fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Human-readable nanosecond formatting (`412ns`, `3.1µs`, `52.4ms`,
/// `1.23s`).
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;

    fn sample_report() -> ProfileReport {
        let p = Profiler::enabled();
        {
            let _t = p.span("train");
            for _ in 0..4 {
                let _r = p.span("learn_round");
                p.record_ns("local_train", 1_000);
            }
        }
        {
            let _d = p.span("day");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        p.snapshot()
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let parsed = ProfileReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ProfileReport::from_json("{}").is_err());
        assert!(ProfileReport::from_json("not json").is_err());
        assert!(ProfileReport::from_json("{\"schema\":\"other\"}").is_err());
    }

    #[test]
    fn render_lists_every_span() {
        let r = sample_report();
        let text = r.render();
        assert!(text.contains("learn_round"));
        assert!(text.contains("local_train"));
        assert!(text.contains("% run"));
    }

    #[test]
    fn coverage_counts_depth_one_only() {
        let r = sample_report();
        let c = r.coverage();
        assert!(c > 0.0 && c <= 1.0, "coverage {c}");
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [10, 20, 30, 40];
        assert_eq!(percentile(&s, 0.50), 20);
        assert_eq!(percentile(&s, 0.95), 40);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.95), 7);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_100), "3.1µs");
        assert_eq!(fmt_ns(52_400_000), "52.4ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
    }
}
