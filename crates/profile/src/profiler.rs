//! The span-tree profiler core.

use crate::report::{percentile, ProfileReport, SpanStats};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Per-span sample retention cap. Counts and totals stay exact past the
/// cap; percentiles are computed over the first `SAMPLE_CAP` samples
/// (plenty for per-round phases, and a hard memory bound for
/// per-message recordings).
const SAMPLE_CAP: usize = 16_384;

#[derive(Debug)]
struct SpanNode {
    name: String,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
    max_ns: u64,
    samples: Vec<u64>,
    /// Samples from concurrent workers: they overlap in wall time, so
    /// their sum may legitimately exceed the parent span's total.
    concurrent: bool,
}

impl SpanNode {
    fn new(name: &str, concurrent: bool) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            children: Vec::new(),
            count: 0,
            total_ns: 0,
            max_ns: 0,
            samples: Vec::new(),
            concurrent,
        }
    }

    fn record(&mut self, sample_ns: u64, count: u64) {
        self.count += count;
        self.total_ns += sample_ns;
        self.max_ns = self.max_ns.max(sample_ns);
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(sample_ns);
        }
    }
}

#[derive(Debug)]
struct ProfCore {
    epoch: Instant,
    nodes: Vec<SpanNode>,
    /// Open-span stack; `stack[0]` is the root, which never closes.
    stack: Vec<usize>,
}

impl ProfCore {
    /// Finds or creates `name` among the children of `parent`.
    fn child(&mut self, parent: usize, name: &str, concurrent: bool) -> usize {
        if let Some(&idx) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode::new(name, concurrent));
        self.nodes[parent].children.push(idx);
        idx
    }
}

/// A hierarchical wall-clock profiler.
///
/// Mirrors the telemetry `Tracer` calling convention: the disabled
/// profiler ([`Profiler::off`]) is a `None` inner and every method is a
/// single branch, so instrumentation stays in production code paths at
/// zero cost. The enabled profiler builds a span tree rooted at an
/// implicit `run` span opened at construction time.
///
/// Profiling is **observational only**: nothing read from the clock
/// ever flows back into simulation state, so runs are byte-identical
/// with profiling on or off (CI-enforced).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Rc<RefCell<ProfCore>>>,
}

impl Profiler {
    /// The disabled profiler: every call is a no-op.
    pub fn off() -> Profiler {
        Profiler { inner: None }
    }

    /// An enabled profiler; the root `run` span starts now.
    pub fn enabled() -> Profiler {
        Profiler {
            inner: Some(Rc::new(RefCell::new(ProfCore {
                epoch: Instant::now(),
                nodes: vec![SpanNode::new("run", false)],
                stack: vec![0],
            }))),
        }
    }

    /// Whether samples are being collected.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name` under the innermost open span. The
    /// returned guard records the elapsed time and closes the span on
    /// drop.
    #[must_use = "the span is timed until the guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(core) = &self.inner else {
            return SpanGuard(None);
        };
        let idx = {
            let mut c = core.borrow_mut();
            let top = *c.stack.last().expect("root span never closes");
            let idx = c.child(top, name, false);
            c.stack.push(idx);
            idx
        };
        SpanGuard(Some(OpenSpan {
            prof: self.clone(),
            idx,
            start: Instant::now(),
        }))
    }

    /// Records one externally measured sample of `ns` nanoseconds as a
    /// child of the innermost open span.
    pub fn record_ns(&self, name: &str, ns: u64) {
        self.record_inner(name, ns, 1, false);
    }

    /// Records an aggregate of `count` occurrences totalling `ns`
    /// nanoseconds (one retained sample). Use for ultra-hot paths where
    /// a per-occurrence sample would be waste.
    pub fn record_ns_n(&self, name: &str, ns: u64, count: u64) {
        self.record_inner(name, ns, count, false);
    }

    /// Records a sample from a concurrent worker. Identical to
    /// [`record_ns`](Profiler::record_ns) except the span is flagged so
    /// report consumers know sibling samples overlap in wall time (and
    /// may sum past the parent).
    pub fn record_concurrent_ns(&self, name: &str, ns: u64) {
        self.record_inner(name, ns, 1, true);
    }

    fn record_inner(&self, name: &str, ns: u64, count: u64, concurrent: bool) {
        if let Some(core) = &self.inner {
            let mut c = core.borrow_mut();
            let top = *c.stack.last().expect("root span never closes");
            let idx = c.child(top, name, concurrent);
            c.nodes[idx].record(ns, count);
        }
    }

    /// The number of spans currently open below the root — 0 when every
    /// enter has been matched by an exit (well-formedness invariant).
    pub fn open_spans(&self) -> usize {
        match &self.inner {
            Some(core) => core.borrow().stack.len() - 1,
            None => 0,
        }
    }

    /// Snapshots the span tree into a [`ProfileReport`]. The root total
    /// is the wall time elapsed since [`Profiler::enabled`]; spans are
    /// listed pre-order. Returns an empty report when disabled.
    pub fn snapshot(&self) -> ProfileReport {
        let Some(core) = &self.inner else {
            return ProfileReport {
                total_ns: 0,
                spans: Vec::new(),
            };
        };
        let c = core.borrow();
        let total_ns = (c.epoch.elapsed().as_nanos() as u64).max(1);
        let mut spans = Vec::with_capacity(c.nodes.len());
        // Pre-order walk carrying (node, depth, path-prefix, parent total).
        let mut work: Vec<(usize, usize, String, u64)> = vec![(0, 0, String::new(), total_ns)];
        while let Some((idx, depth, prefix, parent_ns)) = work.pop() {
            let node = &c.nodes[idx];
            let total = if idx == 0 { total_ns } else { node.total_ns };
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix}/{}", node.name)
            };
            let mut sorted = node.samples.clone();
            sorted.sort_unstable();
            spans.push(SpanStats {
                name: node.name.clone(),
                path: path.clone(),
                depth,
                count: node.count,
                total_ns: total,
                p50_ns: percentile(&sorted, 0.50),
                p95_ns: percentile(&sorted, 0.95),
                max_ns: if idx == 0 { total_ns } else { node.max_ns },
                pct_of_total: 100.0 * total as f64 / total_ns as f64,
                pct_of_parent: 100.0 * total as f64 / parent_ns.max(1) as f64,
                concurrent: node.concurrent,
            });
            // Children in recorded order (reverse-pushed: `work` is a stack).
            for &ch in node.children.iter().rev() {
                work.push((ch, depth + 1, path.clone(), total));
            }
        }
        ProfileReport { total_ns, spans }
    }
}

#[derive(Debug)]
struct OpenSpan {
    prof: Profiler,
    idx: usize,
    start: Instant,
}

/// RAII guard for an open profiler span; see [`Profiler::span`].
#[derive(Debug)]
#[must_use = "the span is timed until the guard drops"]
pub struct SpanGuard(Option<OpenSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else { return };
        let ns = open.start.elapsed().as_nanos() as u64;
        if let Some(core) = &open.prof.inner {
            let mut c = core.borrow_mut();
            debug_assert_eq!(
                c.stack.last().copied(),
                Some(open.idx),
                "span guards must drop in reverse open order"
            );
            // Tolerate mis-nesting in release builds: unwind to this span.
            while c.stack.len() > 1 && c.stack.last().copied() != Some(open.idx) {
                c.stack.pop();
            }
            if c.stack.len() > 1 {
                c.stack.pop();
            }
            c.nodes[open.idx].record(ns, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_profiler_is_inert() {
        let p = Profiler::off();
        assert!(!p.is_on());
        {
            let _s = p.span("anything");
            p.record_ns("x", 5);
        }
        assert_eq!(p.open_spans(), 0);
        let report = p.snapshot();
        assert!(report.spans.is_empty());
    }

    #[test]
    fn spans_nest_and_merge_by_name() {
        let p = Profiler::enabled();
        for _ in 0..3 {
            let _outer = p.span("outer");
            let _inner = p.span("inner");
        }
        assert_eq!(p.open_spans(), 0);
        let r = p.snapshot();
        let outer = r.span("outer").unwrap();
        let inner = r.span("outer/inner").unwrap();
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 3);
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(inner.total_ns <= outer.total_ns);
        assert!(outer.total_ns <= r.total_ns);
    }

    #[test]
    fn record_ns_lands_under_open_span() {
        let p = Profiler::enabled();
        {
            let _s = p.span("phase");
            p.record_ns("leaf", 100);
            p.record_ns("leaf", 300);
            p.record_ns_n("bulk", 1_000, 50);
            p.record_concurrent_ns("worker_busy", 10);
        }
        let r = p.snapshot();
        let leaf = r.span("phase/leaf").unwrap();
        assert_eq!(leaf.count, 2);
        assert_eq!(leaf.total_ns, 400);
        assert_eq!(leaf.max_ns, 300);
        assert_eq!(leaf.p50_ns, 100);
        assert_eq!(leaf.max_ns, 300);
        let bulk = r.span("phase/bulk").unwrap();
        assert_eq!(bulk.count, 50);
        assert_eq!(bulk.total_ns, 1_000);
        assert!(!bulk.concurrent);
        assert!(r.span("phase/worker_busy").unwrap().concurrent);
    }

    #[test]
    fn open_spans_reports_unclosed_guards() {
        let p = Profiler::enabled();
        let s1 = p.span("a");
        let s2 = p.span("b");
        assert_eq!(p.open_spans(), 2);
        drop(s2);
        assert_eq!(p.open_spans(), 1);
        drop(s1);
        assert_eq!(p.open_spans(), 0);
    }

    #[test]
    fn clone_shares_the_core() {
        let p = Profiler::enabled();
        let q = p.clone();
        {
            let _s = q.span("via_clone");
        }
        assert_eq!(p.snapshot().span("via_clone").unwrap().count, 1);
    }
}
