//! Out-of-band wall-clock profiling for GLAP runs.
//!
//! The simulation core is *deterministic by construction*: every result
//! is a pure function of the scenario and the master seed, pinned by
//! byte-identity tests across thread counts, transports and
//! interrupt/resume. Wall-clock time is the one quantity that can never
//! be part of that function — so this crate keeps it strictly
//! **out-of-band**. A [`Profiler`] observes the run (scoped span
//! guards, externally measured samples) but feeds nothing back into it:
//! it draws no randomness, emits no events into the telemetry trace,
//! and is excluded from checkpoints. When disabled it is a single
//! `Option` branch per call, exactly like the telemetry
//! `Tracer`'s off path, so instrumented code costs nothing in
//! production runs.
//!
//! What lives here:
//!
//! * [`Profiler`] / [`SpanGuard`] — hierarchical span tree with
//!   per-span count, total, p50/p95/max over retained samples;
//! * [`ProfileReport`] — a finished snapshot: text rendering for the
//!   terminal and a hand-rolled JSON codec for `profile_*.json`
//!   artifacts;
//! * [`Baseline`] / [`BenchRecord`] — the uniform `BENCH_*.json`
//!   schema (name, scenario, median ns, iterations, git rev) shared by
//!   `bench_refresh` and the `perf_gate` regression gate;
//! * [`measure_median`] — budgeted median-of-N timing used by the
//!   bench suites;
//! * [`Heartbeat`] / [`SweepProgress`] — live stderr progress
//!   (round rate, ETA, sweep cell) for long runs;
//! * [`json`] — the minimal JSON value parser backing the codecs.

#![warn(missing_docs)]

mod baseline;
mod heartbeat;
pub mod json;
mod measure;
mod memory;
mod profiler;
mod report;

pub use baseline::{compare, Baseline, BenchRecord, GateOutcome};
pub use heartbeat::{Heartbeat, SweepProgress};
pub use measure::{measure_median, Measurement};
pub use memory::{alloc_stats, peak_rss_bytes, CountingAllocator};
pub use profiler::{Profiler, SpanGuard};
pub use report::{fmt_ns, ProfileReport, SpanStats};
