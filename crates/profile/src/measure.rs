//! Budgeted median-of-N timing for the bench suites.

use std::time::Instant;

/// Iteration backstop so a mis-budgeted microbenchmark cannot spin
/// forever collecting samples.
const MAX_ITERS: usize = 100_000;

/// What [`measure_median`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: u64,
    /// Iterations measured (≥ 3).
    pub iterations: u64,
}

/// Times `f` repeatedly for roughly `budget_ms` milliseconds (one
/// unmeasured warm-up call first) and returns the median
/// per-iteration wall time. At least 3 iterations always run, so even
/// a single slow call yields a defensible median.
pub fn measure_median<F: FnMut()>(budget_ms: u64, mut f: F) -> Measurement {
    f(); // warm-up: first call pays allocation/cache setup
    let mut samples: Vec<u64> = Vec::new();
    let start = Instant::now();
    loop {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
        let budget_spent = start.elapsed().as_millis() as u64 >= budget_ms;
        if (budget_spent && samples.len() >= 3) || samples.len() >= MAX_ITERS {
            break;
        }
    }
    samples.sort_unstable();
    Measurement {
        median_ns: samples[samples.len() / 2],
        iterations: samples.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_least_three_iterations() {
        let mut calls = 0u64;
        let m = measure_median(0, || calls += 1);
        assert!(m.iterations >= 3);
        // warm-up call + measured iterations
        assert_eq!(calls, m.iterations + 1);
    }

    #[test]
    fn median_is_positive_for_real_work() {
        let m = measure_median(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(m.median_ns > 0);
    }
}
