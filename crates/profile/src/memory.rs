//! Process memory readouts for scalability studies.
//!
//! Two complementary signals:
//!
//! * [`peak_rss_bytes`] — the OS-reported resident-set high-water mark
//!   (`VmHWM` from `/proc/self/status`). Process-wide and monotone: it
//!   captures the worst moment of the run so far, which is the number a
//!   capacity planner needs ("how big a box does a 100k-PM sim need?").
//! * [`CountingAllocator`] — an opt-in `#[global_allocator]` wrapper over
//!   the system allocator that counts allocation calls and requested
//!   bytes. Deltas around a region attribute churn to it; a flat-storage
//!   refactor shows up here as orders of magnitude fewer calls even when
//!   the high-water mark barely moves.
//!
//! Both are observational: neither perturbs determinism contracts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The process resident-set high-water mark in bytes, from Linux's
/// `/proc/self/status` (`VmHWM`). Returns `None` on other platforms or
/// if the field is missing — callers should print `n/a`, not 0, so the
/// absence is visible.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Allocation calls and requested bytes since process start (or since a
/// caller-recorded snapshot — subtract two readings to scope a region).
/// Always zero unless the binary installed [`CountingAllocator`].
pub fn alloc_stats() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// A counting wrapper over the system allocator. Install it per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: glap_profile::CountingAllocator = glap_profile::CountingAllocator;
/// ```
///
/// `realloc` counts as one call with the grown size's delta (shrinks
/// count zero bytes), so repeated `Vec` doubling is charged what it asks
/// the OS for, not the cumulative logical size.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        #[cfg(target_os = "linux")]
        {
            let rss = peak_rss_bytes().expect("VmHWM available on Linux");
            // Any running test binary occupies between 100 KiB and 1 TiB.
            assert!(rss > 100 * 1024, "peak RSS {rss} implausibly small");
            assert!(rss < 1 << 40, "peak RSS {rss} implausibly large");
        }
    }

    #[test]
    fn alloc_stats_read_without_installed_allocator() {
        // The wrapper is not installed in this test binary: counters are
        // readable and zero (the API must not panic either way).
        let (calls, bytes) = alloc_stats();
        assert_eq!((calls, bytes), (0, 0));
    }
}
