//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace vendors `serde` only as an inert stub, so every JSON
//! artifact in the repo is hand-rolled (the telemetry event codec set
//! the precedent). This module is the *reading* half for profile
//! reports and `BENCH_*.json` baselines: a small, strict parser over a
//! plain value enum — no derives, no reflection.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON document (trailing whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` as a quoted JSON string literal (the writing half).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}{}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f µ";
        let doc = format!("{{\"k\":{}}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
