//! The uniform `BENCH_*.json` schema and the regression-gate
//! comparison.
//!
//! Every committed baseline file carries the same four facts per
//! benchmark — name, scenario, median ns, iterations — plus the git
//! revision and time budget it was measured under. `bench_refresh`
//! writes these; `perf_gate` reads them back and compares fresh
//! medians under a tolerance.

use crate::json::{escape, Json};
use std::fmt::Write as _;

/// Schema tag written into every `BENCH_*.json`.
const SCHEMA: &str = "glap-bench-v1";

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable benchmark id, e.g. `learn_phase_256pms`.
    pub name: String,
    /// Human description of the measured scenario.
    pub scenario: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: u64,
    /// Iterations the median was taken over.
    pub iterations: u64,
}

/// A committed baseline file: a suite of [`BenchRecord`]s plus
/// provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Suite id, e.g. `profile`, `hotpath`, `snapshot`.
    pub suite: String,
    /// `git rev-parse --short HEAD` at measurement time (or `unknown`).
    pub git_rev: String,
    /// Per-benchmark time budget the medians were measured under, ms.
    pub budget_ms: u64,
    /// The measurements.
    pub benchmarks: Vec<BenchRecord>,
}

impl Baseline {
    /// Serializes to the `glap-bench-v1` JSON document (pretty, one
    /// benchmark per line — these files are committed and diffed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"suite\": {},", escape(&self.suite));
        let _ = writeln!(out, "  \"git_rev\": {},", escape(&self.git_rev));
        let _ = writeln!(out, "  \"budget_ms\": {},", self.budget_ms);
        let _ = writeln!(out, "  \"benchmarks\": [");
        for (i, b) in self.benchmarks.iter().enumerate() {
            let comma = if i + 1 < self.benchmarks.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"scenario\": {}, \"median_ns\": {}, \"iterations\": {}}}{comma}",
                escape(&b.name),
                escape(&b.scenario),
                b.median_ns,
                b.iterations,
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Parses a `glap-bench-v1` document.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let v = Json::parse(text)?;
        if v.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(format!("not a {SCHEMA} document"));
        }
        let suite = v
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("missing suite")?
            .to_string();
        let git_rev = v
            .get("git_rev")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let budget_ms = v.get("budget_ms").and_then(Json::as_u64).unwrap_or(0);
        let mut benchmarks = Vec::new();
        for b in v
            .get("benchmarks")
            .and_then(Json::as_arr)
            .ok_or("missing benchmarks")?
        {
            benchmarks.push(BenchRecord {
                name: b
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("benchmark missing name")?
                    .to_string(),
                scenario: b
                    .get("scenario")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                median_ns: b
                    .get("median_ns")
                    .and_then(Json::as_u64)
                    .ok_or("benchmark missing median_ns")?,
                iterations: b.get("iterations").and_then(Json::as_u64).unwrap_or(1),
            });
        }
        Ok(Baseline {
            suite,
            git_rev,
            budget_ms,
            benchmarks,
        })
    }

    /// Finds a benchmark by name.
    pub fn find(&self, name: &str) -> Option<&BenchRecord> {
        self.benchmarks.iter().find(|b| b.name == name)
    }
}

/// One benchmark's gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Benchmark id.
    pub name: String,
    /// Committed baseline median, ns (`None` when the baseline lacks
    /// this benchmark — reported, never a regression).
    pub baseline_ns: Option<u64>,
    /// Freshly measured median, ns.
    pub measured_ns: u64,
    /// `measured / baseline` (1.0 when no baseline).
    pub ratio: f64,
    /// Whether the measurement exceeds the tolerance.
    pub regressed: bool,
}

/// Compares fresh measurements against a committed baseline.
///
/// `tolerance` is the allowed fractional slowdown: 1.0 means "fail
/// only past 2× the baseline median" — deliberately generous, because
/// baselines are measured on whatever machine ran `bench_refresh`
/// last.
pub fn compare(baseline: &Baseline, measured: &[BenchRecord], tolerance: f64) -> Vec<GateOutcome> {
    measured
        .iter()
        .map(|m| match baseline.find(&m.name) {
            Some(b) => {
                let ratio = m.median_ns as f64 / b.median_ns.max(1) as f64;
                GateOutcome {
                    name: m.name.clone(),
                    baseline_ns: Some(b.median_ns),
                    measured_ns: m.median_ns,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                }
            }
            None => GateOutcome {
                name: m.name.clone(),
                baseline_ns: None,
                measured_ns: m.median_ns,
                ratio: 1.0,
                regressed: false,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            suite: "profile".into(),
            git_rev: "abc1234".into(),
            budget_ms: 200,
            benchmarks: vec![
                BenchRecord {
                    name: "learn_phase_256pms".into(),
                    scenario: "one learning round, 256 PMs".into(),
                    median_ns: 1_000_000,
                    iterations: 40,
                },
                BenchRecord {
                    name: "dc_step_1024pms".into(),
                    scenario: "one workload step, 1024 PMs".into(),
                    median_ns: 50_000,
                    iterations: 900,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        assert_eq!(Baseline::from_json(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn compare_flags_only_past_tolerance() {
        let base = sample();
        let measured = vec![
            BenchRecord {
                name: "learn_phase_256pms".into(),
                scenario: String::new(),
                median_ns: 1_400_000, // 1.4x: inside 1.0 tolerance
                iterations: 10,
            },
            BenchRecord {
                name: "dc_step_1024pms".into(),
                scenario: String::new(),
                median_ns: 150_000, // 3x: regression
                iterations: 10,
            },
            BenchRecord {
                name: "brand_new".into(),
                scenario: String::new(),
                median_ns: 1,
                iterations: 1,
            },
        ];
        let out = compare(&base, &measured, 1.0);
        assert!(!out[0].regressed);
        assert!(out[1].regressed);
        assert!(!out[2].regressed);
        assert_eq!(out[2].baseline_ns, None);
    }

    #[test]
    fn from_json_rejects_other_schemas() {
        assert!(Baseline::from_json("{\"schema\":\"nope\"}").is_err());
    }
}
