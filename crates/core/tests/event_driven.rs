//! GLAP's aggregation phase under *asynchronous* message delivery.
//!
//! The paper specifies Algorithm 2 as an active/passive thread pair
//! exchanging Q-tables over a network; the cycle-driven experiments
//! idealize that as synchronous rounds. This test runs the same merge
//! logic over the event-driven engine — random link latencies, interleaved
//! deliveries, push–pull via real messages — and checks that the protocol
//! still unifies all PMs' tables.

use glap_cluster::Resources;
use glap_dcsim::{EdContext, EdEvent, EdNode, EdNodeId, EventEngine, LatencyModel, SimRng};
use glap_qlearn::{PmState, QParams, QTablePair, VmAction};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;

/// Messages of the asynchronous aggregation protocol.
#[derive(Debug, Clone)]
enum Msg {
    /// Active push: the initiator's full table.
    Push(Box<QTablePair>),
    /// Passive reply: the responder's table *before* merging.
    Reply(Box<QTablePair>),
}

/// One PM running Algorithm 2 asynchronously.
struct AggNode {
    tables: QTablePair,
    peers: Vec<EdNodeId>,
    rng: SimRng,
}

impl EdNode<Msg> for AggNode {
    fn on_event(&mut self, ev: EdEvent<Msg>, ctx: &mut EdContext<Msg>) {
        match ev {
            EdEvent::Timer { .. } => {
                // Active thread: selectPeer(); send(q, φ_p).
                let peer = self.peers[self.rng.gen_range(0..self.peers.len())];
                ctx.send(peer, Msg::Push(Box::new(self.tables.clone())));
                ctx.set_timer(25, 0);
            }
            EdEvent::Message {
                from,
                payload: Msg::Push(theirs),
            } => {
                // Passive thread: reply with our pre-merge table, then
                // UPDATE(φ_p, φ_q).
                ctx.send(from, Msg::Reply(Box::new(self.tables.clone())));
                self.tables.merge(&theirs);
            }
            EdEvent::Message {
                payload: Msg::Reply(theirs),
                ..
            } => {
                self.tables.merge(&theirs);
            }
        }
    }
}

fn seeded_node(id: u64, n: usize, value: f64) -> AggNode {
    let mut tables = QTablePair::new(QParams::default());
    let s = PmState::from_utilization(Resources::splat(0.5));
    let a = VmAction::from_demand(Resources::splat(0.1));
    tables.out.set(s, a, value);
    // Every node also knows one private pair nobody else has.
    let private = PmState::from_index(id as usize % 81);
    tables.r#in.set(private, a, -(id as f64));
    AggNode {
        tables,
        peers: (0..n as EdNodeId).filter(|&p| u64::from(p) != id).collect(),
        rng: SimRng::seed_from_u64(5000 + id),
    }
}

#[test]
fn asynchronous_aggregation_converges_like_the_synchronous_one() {
    let n = 24;
    let nodes: Vec<AggNode> = (0..n as u64).map(|i| seeded_node(i, n, i as f64)).collect();
    let mut eng = EventEngine::new(
        nodes,
        LatencyModel {
            min_ticks: 1,
            max_ticks: 15,
        },
        42,
    );
    for i in 0..n as EdNodeId {
        eng.schedule_timer(i, u64::from(i) % 7, 0);
    }
    eng.run_until(4000);

    // All tables highly similar…
    let reference = &eng.node(0).tables;
    for i in 1..n as EdNodeId {
        let sim = reference.cosine_similarity(&eng.node(i).tables);
        assert!(sim > 0.999, "node {i} diverged: similarity {sim}");
    }
    // …the shared pair's values concentrated near the initial mean…
    let s = PmState::from_utilization(Resources::splat(0.5));
    let a = VmAction::from_demand(Resources::splat(0.1));
    let mean_init = (n as f64 - 1.0) / 2.0;
    for i in 0..n as EdNodeId {
        let v = eng.node(i).tables.out.get(s, a);
        assert!(
            (v - mean_init).abs() < mean_init * 0.5,
            "node {i} value {v} far from mean {mean_init}"
        );
    }
    // …and every private pair has spread to every node.
    for i in 0..n as EdNodeId {
        let pairs = eng.node(i).tables.trained_pairs();
        assert!(
            pairs >= n,
            "node {i} holds only {pairs} pairs; knowledge did not spread"
        );
    }
}

#[test]
fn aggregation_tolerates_extreme_latency_skew() {
    // Some links 100× slower than others: convergence is slower but not
    // broken.
    let n = 12;
    let nodes: Vec<AggNode> = (0..n as u64).map(|i| seeded_node(i, n, i as f64)).collect();
    let mut eng = EventEngine::new(
        nodes,
        LatencyModel {
            min_ticks: 1,
            max_ticks: 300,
        },
        7,
    );
    for i in 0..n as EdNodeId {
        eng.schedule_timer(i, u64::from(i), 0);
    }
    eng.run_until(20_000);
    let reference = &eng.node(0).tables;
    for i in 1..n as EdNodeId {
        let sim = reference.cosine_similarity(&eng.node(i).tables);
        assert!(sim > 0.99, "node {i} similarity {sim}");
    }
}
