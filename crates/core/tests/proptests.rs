//! Property-based tests of the GLAP protocol layers: the learning phase
//! never poisons safe states, the aggregation phase conserves knowledge,
//! and the consolidation policy never breaks world invariants.

use glap::prelude::*;
use glap::{local_train, synthetic_table, train_two_pass_reference};
use glap_cluster::{DataCenter, DataCenterConfig, Resources, VmId, VmProfile, VmSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Exact encoded bytes of a table pair — the strictest equality there
/// is (distinguishes even -0.0 from 0.0).
fn pair_bytes(t: &QTablePair) -> Vec<u8> {
    let mut w = Writer::new();
    t.save(&mut w);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Training over arbitrary light profiles (no subset can overload)
    /// never produces a veto entry.
    #[test]
    fn light_profiles_never_learn_vetoes(
        profiles in proptest::collection::vec((0.0f64..0.05, 0.0f64..0.05), 2..12),
        iterations in 10usize..200,
        seed in 0u64..500,
    ) {
        let mut q = QTablePair::new(QParams::default());
        let profs: Vec<VmProfile> = profiles
            .iter()
            .map(|&(c, m)| VmProfile::from_fractions(Resources::new(c, m), Resources::new(c, m)))
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        local_train(&mut q, &profs, iterations, &mut rng);
        for (_, _, v) in q.r#in.iter_visited() {
            prop_assert!(v >= 0.0, "light-profile training produced veto value {v}");
        }
    }

    /// Aggregation never loses knowledge: the union of visited pairs
    /// across all PMs is invariant under gossip rounds.
    #[test]
    fn aggregation_conserves_knowledge(
        seeds in proptest::collection::vec(0u64..1000, 4..12),
        rounds in 1usize..10,
    ) {
        let n = seeds.len();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut tables: Vec<QTablePair> = seeds
            .iter()
            .map(|&s| {
                let mut r = SmallRng::seed_from_u64(s);
                // A few random entries per PM.
                let mut t = QTablePair::new(QParams::default());
                let profs: Vec<VmProfile> = (0..6)
                    .map(|i| {
                        let c = 0.05 + 0.03 * i as f64;
                        VmProfile::from_fractions(Resources::splat(c), Resources::splat(c))
                    })
                    .collect();
                local_train(&mut t, &profs, 30, &mut r);
                t
            })
            .collect();
        let union_before = unified_table(&tables).trained_pairs();
        let mut overlay = CyclonOverlay::new(n, 4, 2);
        overlay.bootstrap_random(&mut rng);
        for _ in 0..rounds {
            overlay.run_round(&mut rng, RoundIo::default());
            aggregation_round(&mut tables, &mut overlay, &mut rng, AggIo::default());
        }
        let union_after = unified_table(&tables).trained_pairs();
        prop_assert_eq!(union_before, union_after);
        // And no individual PM knows more than the union.
        for t in &tables {
            prop_assert!(t.trained_pairs() <= union_after);
        }
    }

    /// The consolidation policy preserves world invariants and VM
    /// conservation for arbitrary (seeded) worlds and demand levels.
    #[test]
    fn policy_preserves_world_invariants(
        seed in 0u64..300,
        level_centi in 5u32..95,
        n_pms in 5usize..20,
        ratio in 1usize..5,
    ) {
        let level = f64::from(level_centi) / 100.0;
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        let n_vms = n_pms * ratio;
        for _ in 0..n_vms {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.random_placement(&mut stream_rng(seed, Stream::Placement));
        let mut trace = move |vm: VmId, r: u64| {
            let x = level + 0.2 * ((r as f64 / 5.0) + f64::from(vm.0)).sin();
            Resources::splat(x.clamp(0.0, 1.0))
        };
        let mut policy = GlapPolicy::with_shared_table(
            GlapConfig::default(),
            synthetic_table(&mut stream_rng(seed, Stream::Custom(5))),
        );
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 25, seed);
        prop_assert!(dc.check_invariants().is_ok(), "{:?}", dc.check_invariants());
        let hosted: usize = dc.pms().map(|p| p.vm_count()).sum();
        prop_assert_eq!(hosted, n_vms);
        prop_assert!(dc.active_pm_count() >= 1);
    }

    /// The in-place symmetric merge used by `merge_pair` is bit-for-bit
    /// the old clone-then-average formulation (`a.merge(&b)` followed by
    /// `b.clone_from(&a)`) for arbitrary trained table pairs — compared
    /// down to the encoded snapshot bytes, so even a `-0.0`/`0.0` flip
    /// would fail.
    #[test]
    fn in_place_merge_matches_clone_then_average_bitwise(
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
        iters_a in 0usize..50,
        iters_b in 0usize..50,
    ) {
        let mk = |seed: u64, iters: usize| {
            let mut t = QTablePair::new(QParams::default());
            let mut r = SmallRng::seed_from_u64(seed);
            let profs: Vec<VmProfile> = (0..7)
                .map(|i| {
                    let c = 0.05 + 0.09 * ((seed as usize + i) % 9) as f64;
                    VmProfile::from_fractions(Resources::splat(c), Resources::splat(c))
                })
                .collect();
            local_train(&mut t, &profs, iters, &mut r);
            t
        };
        let a0 = mk(seed_a, iters_a);
        let b0 = mk(seed_b, iters_b);

        // Old formulation.
        let mut a_old = a0.clone();
        let mut b_old = b0.clone();
        a_old.merge(&b_old);
        b_old.clone_from(&a_old);

        // New in-place formulation, exactly as the aggregation phase
        // invokes it.
        let mut tables = vec![a0, b0];
        merge_pair(&mut tables, 0, 1);

        prop_assert_eq!(pair_bytes(&tables[0]), pair_bytes(&a_old));
        prop_assert_eq!(pair_bytes(&tables[1]), pair_bytes(&b_old));
    }

    /// The arena engine — flat Q-table slab, dirty-set eligibility and
    /// the fused last-learn + first-aggregate sweep — reproduces the
    /// two-pass reference engine bit for bit over random worlds, round
    /// schedules, sleeping fleets and worker counts. Compared on the
    /// encoded table bytes, so a single flipped sign bit fails.
    #[test]
    fn fused_engine_matches_two_pass_reference_bitwise(
        seed in 0u64..1000,
        n_pms in 8usize..32,
        ratio in 1usize..4,
        learning_rounds in 1usize..5,
        aggregation_rounds in 0usize..5,
        sleep_empties in any::<bool>(),
        threads_idx in 0usize..2,
    ) {
        use glap_cluster::PmId;
        let threads = [1usize, 4][threads_idx];
        let cfg = GlapConfig {
            learning_rounds,
            aggregation_rounds,
            learning_iterations: 6,
            ..GlapConfig::default()
        };
        let build = || {
            let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
            for _ in 0..n_pms * ratio {
                dc.add_vm(VmSpec::EC2_MICRO);
            }
            dc.random_placement(&mut stream_rng(seed, Stream::Placement));
            if sleep_empties {
                let empty: Vec<PmId> =
                    dc.pms().filter(|p| p.is_empty()).map(|p| p.id()).collect();
                for pm in empty {
                    dc.sleep_if_empty(pm);
                }
            }
            dc
        };
        let mut trace = move |vm: VmId, r: u64| {
            let x = 0.3 + 0.25 * ((r as f64 / 7.0) + f64::from(vm.0) + seed as f64).sin();
            Resources::splat(x)
        };
        let (ref_tables, ref_report, _) = train_two_pass_reference(
            &mut build(),
            &mut trace,
            &cfg,
            seed,
            false,
            &Tracer::off(),
            Some(1),
            &Profiler::off(),
        );
        let want: Vec<Vec<u8>> = ref_tables.iter().map(pair_bytes).collect();
        let (tables, report, _) = train_instrumented(
            &mut build(),
            &mut trace,
            &cfg,
            seed,
            false,
            &Tracer::off(),
            Some(threads),
            &Profiler::off(),
        );
        let got: Vec<Vec<u8>> = tables.iter().map(pair_bytes).collect();
        prop_assert_eq!(got, want, "engines diverged at {} threads", threads);
        prop_assert_eq!(report.pms_trained, ref_report.pms_trained);
        prop_assert_eq!(report.updates, ref_report.updates);
    }

    /// The incremental (dirty-set) eligibility index agrees with a full
    /// `is_eligible` scan after any interleaving of workload steps,
    /// sleeps and wakes, at any threshold.
    #[test]
    fn dirty_set_eligibility_matches_full_scan(
        seed in 0u64..1000,
        n_pms in 4usize..32,
        ratio in 0usize..3,
        threshold_centi in 10u32..90,
        ops in proptest::collection::vec((0u8..3, 0usize..64), 1..12),
    ) {
        use glap::is_eligible;
        use glap_cluster::PmId;
        let threshold = f64::from(threshold_centi) / 100.0;
        let cfg = GlapConfig {
            learning_threshold: threshold,
            ..GlapConfig::default()
        };
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.random_placement(&mut stream_rng(seed, Stream::Placement));
        let mut trace = move |vm: VmId, r: u64| {
            let x = 0.4 + 0.35 * ((r as f64 / 3.0) + f64::from(vm.0) + seed as f64).sin();
            Resources::splat(x.clamp(0.0, 1.0))
        };
        for &(op, arg) in &ops {
            match op {
                0 => {
                    dc.step(&mut trace);
                }
                1 => {
                    dc.sleep_if_empty(PmId((arg % n_pms) as u32));
                }
                _ => {
                    dc.wake(PmId((arg % n_pms) as u32));
                }
            }
            // Refresh *every* iteration: the index must stay exact both
            // right after a burst of dirt and when nothing changed.
            dc.refresh_eligibility(threshold);
            let flags = dc.eligible_flags();
            for i in 0..n_pms {
                prop_assert_eq!(
                    flags[i],
                    is_eligible(&dc, PmId(i as u32), &cfg),
                    "PM {} after op {:?}",
                    i,
                    (op, arg)
                );
            }
        }
    }

    /// Disabling the veto can only consolidate at least as aggressively
    /// (monotonicity of the ablation) on identical worlds.
    #[test]
    fn veto_ablation_is_monotone_in_packing(seed in 0u64..100) {
        let run = |disable: bool| {
            let mut dc = DataCenter::new(DataCenterConfig::paper(12));
            for _ in 0..36 {
                dc.add_vm(VmSpec::EC2_MICRO);
            }
            dc.random_placement(&mut stream_rng(seed, Stream::Placement));
            let mut trace = |_: VmId, _: u64| Resources::splat(0.55);
            let mut policy = GlapPolicy::with_shared_table(
                GlapConfig::default(),
                synthetic_table(&mut stream_rng(seed, Stream::Custom(6))),
            );
            policy.disable_in_veto = disable;
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 20, seed);
            dc.active_pm_count()
        };
        prop_assert!(run(true) <= run(false));
    }
}
