//! The end-to-end two-phase training pipeline.
//!
//! Runs the learning phase (Algorithm 1) for a configured number of rounds
//! — stepping the workload so VM averages accumulate, exactly like the
//! paper's 700 pre-run rounds — then the aggregation phase (Algorithm 2)
//! until the PMs' tables unify. Optionally records the mean pairwise cosine
//! similarity each round, which regenerates Figure 5.

use crate::aggregation::{
    aggregation_round, aggregation_round_sharded, mean_pairwise_similarity, AggIo,
};
use crate::config::GlapConfig;
use crate::learning::{
    duplicate_profiles, gather_profiles, gather_profiles_into, is_eligible, local_train,
    local_train_with, required_duplication,
};
use glap_cluster::{DataCenter, DemandSource, PmId, VmProfile};
use glap_codec::{CodecKind, FleetCodecs};
use glap_cyclon::{CyclonNode, CyclonOverlay, RoundIo};
use glap_dcsim::{stream_rng, SimRng, Stream};
use glap_par::parallel_for_each_timed;
use glap_profile::Profiler;
use glap_qlearn::QTablePair;
use glap_telemetry::{ConvergenceMonitor, EventKind, OverlayHealth, Phase, Tracer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which phase a similarity sample was taken in (Figure 5 plots the
/// learning phase as "WOG" — without gossip — and the aggregation phase as
/// "WG").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainPhase {
    /// Learning phase (local training only).
    Learning,
    /// Aggregation phase (gossip merging).
    Aggregation,
}

/// Record of a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// `(phase, round-within-phase, mean pairwise cosine similarity)`.
    pub similarity: Vec<(TrainPhase, usize, f64)>,
    /// Number of PMs that ran at least one local training round.
    pub pms_trained: usize,
    /// Total Bellman updates applied.
    pub updates: u64,
}

/// How many random PM pairs to sample per similarity measurement.
const SIMILARITY_SAMPLE_PAIRS: usize = 300;

/// Runs the full two-phase training protocol.
///
/// Steps `dc` through `cfg.learning_rounds` workload rounds (so averages
/// accumulate), training eligible PMs each round, then runs
/// `cfg.aggregation_rounds` of gossip merging. Returns the per-PM tables
/// and a report. Set `record_similarity` to collect the Figure 5 series
/// (costs one sampled similarity sweep per round).
pub fn train<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
) -> (Vec<QTablePair>, TrainReport) {
    let (tables, report, _) = train_traced(
        dc,
        trace,
        cfg,
        master_seed,
        record_similarity,
        &Tracer::off(),
    );
    (tables, report)
}

/// Reusable buffers for the per-round convergence sample: one flat
/// `alive-PMs × (out ++ in)` value matrix, the unified reference vector
/// and the liveness mask. Allocated once per training run instead of
/// `O(n)` vectors per sampled round.
#[derive(Default)]
struct ConvergenceScratch {
    flat: Vec<f64>,
    reference: Vec<f64>,
    alive: Vec<bool>,
}

/// One monitor sample: population diameter + cosine-vs-unified + overlay
/// health, recorded into `monitor` and emitted as a `convergence_sampled`
/// event. Reads no randomness, so it cannot perturb the run.
fn sample_convergence(
    monitor: &mut ConvergenceMonitor,
    tracer: &Tracer,
    phase: Phase,
    cycle: u64,
    tables: &[QTablePair],
    overlay: &CyclonOverlay,
    scratch: &mut ConvergenceScratch,
) {
    // Every table has the same dense dimension (out ++ in), so the flat
    // matrix chunks back into per-PM rows exactly.
    let dim = tables
        .first()
        .map(|t| t.out.raw_values().len() + t.r#in.raw_values().len())
        .unwrap_or(0);
    scratch.flat.clear();
    for (i, t) in tables.iter().enumerate() {
        if overlay.is_alive(i as u32) {
            scratch.flat.extend_from_slice(t.out.raw_values());
            scratch.flat.extend_from_slice(t.r#in.raw_values());
        }
    }
    let unified = unified_table(tables);
    scratch.reference.clear();
    scratch
        .reference
        .extend_from_slice(unified.out.raw_values());
    scratch
        .reference
        .extend_from_slice(unified.r#in.raw_values());
    scratch.alive.clear();
    scratch
        .alive
        .extend((0..overlay.len()).map(|i| overlay.is_alive(i as u32)));
    let health = OverlayHealth::from_in_degrees(
        &overlay.in_degrees(),
        &scratch.alive,
        overlay.is_connected(),
    );
    let sample = monitor.record(
        phase,
        cycle,
        scratch.flat.chunks_exact(dim.max(1)),
        &scratch.reference,
        health,
    );
    tracer.emit(EventKind::ConvergenceSampled {
        cycle: cycle as u32,
        diameter: sample.diameter,
        cosine: sample.mean_cosine_to_ref,
        alive: health.alive as u32,
        connected: health.connected,
    });
}

/// [`train`] with an event tracer and convergence monitor.
///
/// With the tracer off this is byte-identical to [`train`]: tracing and
/// monitoring read no randomness, and the monitor only samples when the
/// tracer is on. With it on, every training round additionally records a
/// [`ConvergenceSample`](glap_telemetry::ConvergenceSample) — population
/// diameter (the machine-checkable face of Theorem 1), mean cosine
/// similarity to the unified table, and overlay health — and emits a
/// `convergence_sampled` event stamped with the phase
/// ([`Phase::Learning`] / [`Phase::Aggregation`]) and round.
pub fn train_traced<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    train_traced_with_threads(dc, trace, cfg, master_seed, record_similarity, tracer, None)
}

/// Per-PM training workspace, persisting across learning rounds so the
/// hot loop never re-allocates its profile list or shuffle indices.
#[derive(Default)]
struct LearnScratch {
    profiles: Vec<VmProfile>,
    idxs: Vec<usize>,
}

/// One eligible PM's unit of work for a learning round: disjoint `&mut`
/// borrows of everything the PM touches (its tables, its private RNG
/// stream, its overlay slot, its scratch), so the worker pool can run
/// the units in any order or interleaving without changing a single
/// byte of the result.
struct LearnTask<'a> {
    pm: PmId,
    table: &'a mut QTablePair,
    rng: &'a mut SimRng,
    node: &'a mut CyclonNode,
    scratch: &'a mut LearnScratch,
}

/// [`train_traced`] with an explicit worker-count override for the
/// learning phase (`None` resolves through `glap_par::resolve_threads`:
/// the `--threads` flag, then `GLAP_THREADS`, then all cores).
///
/// Each PM draws from its own `Stream::LearningPm(pm)` RNG, so the
/// result is byte-identical at every thread count — 1, 4 or N workers
/// produce the same tables, report and monitor series.
pub fn train_traced_with_threads<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
    threads: Option<usize>,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    train_instrumented(
        dc,
        trace,
        cfg,
        master_seed,
        record_similarity,
        tracer,
        threads,
        &Profiler::off(),
    )
}

/// [`train_traced_with_threads`] with a wall-clock [`Profiler`]
/// attached. Spans: `train` → `learn_round` {`workload_step`,
/// `shuffle`, `fanout`, `local_train` (+ per-worker
/// `worker_busy`/`worker_idle` samples), `similarity`, `convergence`}
/// and `agg_round` {`shuffle`, `merge`, `similarity`, `convergence`}.
///
/// Profiling is strictly observational (the profiler reads no
/// randomness and feeds nothing back), so results are byte-identical
/// with it on or off — the `integration_profile` suite pins this.
#[allow(clippy::too_many_arguments)]
pub fn train_instrumented<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
    threads: Option<usize>,
    profiler: &Profiler,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    let _train_span = profiler.span("train");
    cfg.validate().expect("invalid GLAP config");
    let n = dc.n_pms();
    let mut tables: Vec<QTablePair> = (0..n).map(|_| QTablePair::new(cfg.qparams)).collect();
    let mut overlay = CyclonOverlay::new(n, cfg.cyclon_cache, cfg.cyclon_shuffle);
    let mut overlay_rng = stream_rng(master_seed, Stream::Overlay);
    let mut learn_rng = stream_rng(master_seed, Stream::Learning);
    overlay.bootstrap_random(&mut overlay_rng);
    for pm in dc.pms() {
        if !pm.is_active() {
            overlay.set_dead(pm.id().0);
        }
    }

    let mut report = TrainReport::default();
    let mut monitor = ConvergenceMonitor::new();
    let mut trained = vec![false; n];
    // Private per-PM randomness: the stream cursor advances with the PM
    // across rounds, independent of every other PM and of how the round
    // is scheduled over workers.
    let mut pm_rngs: Vec<SimRng> = (0..n)
        .map(|i| stream_rng(master_seed, Stream::LearningPm(i as u32)))
        .collect();
    let mut scratch: Vec<LearnScratch> = (0..n).map(|_| LearnScratch::default()).collect();
    let mut conv_scratch = ConvergenceScratch::default();

    // ---- Learning phase (WOG) -------------------------------------
    tracer.set_phase(Phase::Learning);
    for round in 0..cfg.learning_rounds {
        let _round_span = profiler.span("learn_round");
        tracer.begin_round(round as u64);
        {
            let _s = profiler.span("workload_step");
            dc.step(trace);
        }
        {
            let _s = profiler.span("shuffle");
            overlay.run_round(&mut overlay_rng, RoundIo::traced(tracer));
        }
        {
            // Eligibility is decided up front from the shared snapshot;
            // the workers then only touch their own task's state plus
            // the read-only data-center view and liveness mask.
            let fanout_span = profiler.span("fanout");
            let view = dc.view();
            let (nodes, alive) = overlay.split_mut();
            let mut tasks: Vec<LearnTask<'_>> = tables
                .iter_mut()
                .zip(pm_rngs.iter_mut())
                .zip(nodes.iter_mut())
                .zip(scratch.iter_mut())
                .enumerate()
                .filter(|(i, _)| is_eligible(dc, PmId(*i as u32), cfg))
                .map(|(i, (((table, rng), node), scr))| LearnTask {
                    pm: PmId(i as u32),
                    table,
                    rng,
                    node,
                    scratch: scr,
                })
                .collect();
            drop(fanout_span);
            let train_span = profiler.span("local_train");
            let timing = parallel_for_each_timed(&mut tasks, threads, |t| {
                let neighbor = CyclonOverlay::random_alive_peer_in(t.node, alive, t.rng).map(PmId);
                gather_profiles_into(
                    view,
                    t.pm,
                    neighbor,
                    cfg.profile_duplication,
                    &mut t.scratch.profiles,
                );
                local_train_with(
                    t.table,
                    &t.scratch.profiles,
                    cfg.learning_iterations,
                    t.rng,
                    &mut t.scratch.idxs,
                );
            });
            if profiler.is_on() {
                for w in &timing.workers {
                    profiler.record_concurrent_ns("worker_busy", w.busy_ns);
                    profiler.record_concurrent_ns(
                        "worker_idle",
                        timing.wall_ns.saturating_sub(w.busy_ns),
                    );
                }
            }
            drop(train_span);
            for t in &tasks {
                trained[t.pm.0 as usize] = true;
                report.updates += 2 * cfg.learning_iterations as u64;
            }
        }
        if record_similarity {
            let _s = profiler.span("similarity");
            let sim = mean_pairwise_similarity(
                &tables,
                &overlay,
                SIMILARITY_SAMPLE_PAIRS,
                &mut learn_rng,
            );
            report.similarity.push((TrainPhase::Learning, round, sim));
        }
        if tracer.is_on() {
            let _s = profiler.span("convergence");
            sample_convergence(
                &mut monitor,
                tracer,
                Phase::Learning,
                round as u64,
                &tables,
                &overlay,
                &mut conv_scratch,
            );
        }
        tracer.end_round();
    }

    // ---- Aggregation phase (WG) ------------------------------------
    tracer.set_phase(Phase::Aggregation);
    // Per-PM codec state persists across the whole phase (deltas diff
    // against the last completed exchange). Identity stays on the
    // legacy verbatim-merge path — bit-identical tables and telemetry.
    let mut codecs = (cfg.codec != CodecKind::Identity).then(|| FleetCodecs::new(n, cfg.codec));
    for round in 0..cfg.aggregation_rounds {
        let _round_span = profiler.span("agg_round");
        tracer.begin_round(round as u64);
        {
            let _s = profiler.span("shuffle");
            overlay.run_round(&mut overlay_rng, RoundIo::traced(tracer));
        }
        {
            let _s = profiler.span("merge");
            if let Some(codecs) = codecs.as_mut() {
                let io = AggIo::traced(tracer).with_codec(codecs);
                aggregation_round(&mut tables, &mut overlay, &mut learn_rng, io);
            } else {
                // Verbatim merges have no cross-exchange codec state, so
                // the round shards across the worker pool.
                aggregation_round_sharded(
                    &mut tables,
                    &mut overlay,
                    &mut learn_rng,
                    threads,
                    AggIo::traced(tracer),
                );
            }
        }
        if record_similarity {
            let _s = profiler.span("similarity");
            let sim = mean_pairwise_similarity(
                &tables,
                &overlay,
                SIMILARITY_SAMPLE_PAIRS,
                &mut learn_rng,
            );
            report
                .similarity
                .push((TrainPhase::Aggregation, round, sim));
        }
        if tracer.is_on() {
            let _s = profiler.span("convergence");
            sample_convergence(
                &mut monitor,
                tracer,
                Phase::Aggregation,
                round as u64,
                &tables,
                &overlay,
                &mut conv_scratch,
            );
        }
        tracer.end_round();
    }

    report.pms_trained = trained.iter().filter(|&&t| t).count();
    (tables, report, monitor)
}

/// Collapses per-PM tables into one unified table by merging everything —
/// the fixed point the gossip converges to (union of keys, averaged
/// values). Used to hand one shared table to the consolidation component
/// after convergence.
pub fn unified_table(tables: &[QTablePair]) -> QTablePair {
    let mut unified = tables.first().cloned().unwrap_or_default();
    for t in &tables[1..] {
        unified.merge(t);
    }
    unified
}

/// Re-runs the two-phase protocol *in place* on a live data center —
/// no workload stepping, using the demand averages the VMs have already
/// accumulated in production. This is the paper's re-trigger path:
/// "the learning component runs as required by a predefined policy, e.g.
/// if the arrival and departure rates of VMs exceed a threshold compared
/// to the last learning time or based on a fixed time interval" (§IV-B).
///
/// `passes` controls how many local-training sweeps each eligible PM runs
/// (each sweep applies `cfg.learning_iterations` simulated migrations).
/// Returns the unified post-aggregation table.
pub fn retrain_in_place<R: Rng>(
    dc: &DataCenter,
    cfg: &GlapConfig,
    passes: usize,
    rng: &mut R,
) -> QTablePair {
    let n = dc.n_pms();
    let mut tables: Vec<QTablePair> = (0..n).map(|_| QTablePair::new(cfg.qparams)).collect();
    let mut overlay = CyclonOverlay::new(n, cfg.cyclon_cache, cfg.cyclon_shuffle);
    // Bootstrap with the live membership: sleeping PMs are out.
    overlay.bootstrap_random(rng);
    for pm in dc.pms() {
        if !pm.is_active() {
            overlay.set_dead(pm.id().0);
        }
    }
    for _ in 0..passes {
        overlay.run_round(rng, RoundIo::default());
        for (i, table) in tables.iter_mut().enumerate() {
            let pm = PmId(i as u32);
            if !is_eligible(dc, pm, cfg) {
                continue;
            }
            let neighbor = overlay.random_alive_peer(i as u32, rng).map(PmId);
            // Adaptive duplication: on a consolidated cluster the eligible
            // PMs are the light ones, so the fixed factor is not enough to
            // cover high-load states ("duplicate vms if required").
            let base = gather_profiles(dc, pm, neighbor, 1);
            let dup = required_duplication(&base, cfg.profile_duplication);
            let profiles = duplicate_profiles(base, dup);
            local_train(table, &profiles, cfg.learning_iterations, rng);
        }
    }
    let mut codecs = (cfg.codec != CodecKind::Identity).then(|| FleetCodecs::new(n, cfg.codec));
    for _ in 0..cfg.aggregation_rounds {
        overlay.run_round(rng, RoundIo::default());
        let mut io = AggIo::default();
        if let Some(codecs) = codecs.as_mut() {
            io = io.with_codec(codecs);
        }
        aggregation_round(&mut tables, &mut overlay, rng, io);
    }
    unified_table(&tables)
}

/// Convenience wrapper: trains and returns only the unified table.
pub fn train_unified<D: DemandSource + ?Sized, R: Rng>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    _rng: &mut R,
) -> QTablePair {
    let (tables, _) = train(dc, trace, cfg, master_seed, false);
    unified_table(&tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, Resources, VmId, VmSpec};

    fn setup(n_pms: usize, ratio: usize) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        let mut rng = stream_rng(1, Stream::Placement);
        dc.random_placement(&mut rng);
        dc
    }

    fn small_cfg() -> GlapConfig {
        GlapConfig {
            learning_rounds: 10,
            aggregation_rounds: 10,
            learning_iterations: 10,
            ..Default::default()
        }
    }

    fn wave_trace(vm: VmId, round: u64) -> Resources {
        let x = 0.3 + 0.25 * ((round as f64 / 7.0) + vm.0 as f64).sin();
        Resources::splat(x)
    }

    #[test]
    fn training_produces_knowledge_and_convergence() {
        let mut dc = setup(30, 3);
        let cfg = small_cfg();
        let (tables, report) = train(&mut dc, &mut wave_trace, &cfg, 42, true);
        assert!(report.pms_trained > 0);
        assert!(report.updates > 0);
        assert!(tables.iter().any(|t| t.trained_pairs() > 0));
        // Similarity series: learning phase entries then aggregation.
        let learn_sims: Vec<f64> = report
            .similarity
            .iter()
            .filter(|(p, _, _)| *p == TrainPhase::Learning)
            .map(|&(_, _, s)| s)
            .collect();
        let agg_sims: Vec<f64> = report
            .similarity
            .iter()
            .filter(|(p, _, _)| *p == TrainPhase::Aggregation)
            .map(|&(_, _, s)| s)
            .collect();
        assert_eq!(learn_sims.len(), cfg.learning_rounds);
        assert_eq!(agg_sims.len(), cfg.aggregation_rounds);
        // The paper's headline: aggregation drives similarity near 1.
        let final_sim = *agg_sims.last().unwrap();
        assert!(final_sim > 0.99, "final similarity {final_sim}");
        // And learning alone plateaus lower than the aggregated result.
        let final_learn = *learn_sims.last().unwrap();
        assert!(
            final_learn < final_sim,
            "WOG {final_learn} vs WG {final_sim}"
        );
    }

    #[test]
    fn unified_table_covers_union_of_knowledge() {
        let mut dc = setup(20, 2);
        let (tables, _) = train(&mut dc, &mut wave_trace, &small_cfg(), 7, false);
        let uni = unified_table(&tables);
        let max_individual = tables.iter().map(|t| t.trained_pairs()).max().unwrap();
        assert!(uni.trained_pairs() >= max_individual);
    }

    #[test]
    fn training_is_deterministic() {
        let run = |seed: u64| {
            let mut dc = setup(15, 2);
            let (tables, _) = train(&mut dc, &mut wave_trace, &small_cfg(), seed, false);
            unified_table(&tables)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn sleeping_pms_do_not_train() {
        let mut dc = setup(10, 2);
        // Empty PM 0 by construction is unlikely; force-sleep an empty one
        // if any, otherwise skip.
        let empty: Vec<PmId> = dc.pms().filter(|p| p.is_empty()).map(|p| p.id()).collect();
        for pm in &empty {
            dc.sleep_if_empty(*pm);
        }
        let (_, report) = train(&mut dc, &mut wave_trace, &small_cfg(), 3, false);
        assert!(report.pms_trained <= 10 - empty.len());
    }
}
