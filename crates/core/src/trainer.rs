//! The end-to-end two-phase training pipeline.
//!
//! Runs the learning phase (Algorithm 1) for a configured number of rounds
//! — stepping the workload so VM averages accumulate, exactly like the
//! paper's 700 pre-run rounds — then the aggregation phase (Algorithm 2)
//! until the PMs' tables unify. Optionally records the mean pairwise cosine
//! similarity each round, which regenerates Figure 5.

use crate::aggregation::{
    aggregation_round, aggregation_round_sharded, build_agg_plan, mean_pairwise_similarity, AggIo,
    AggPlan,
};
use crate::config::GlapConfig;
use crate::learning::{
    duplicate_profiles, gather_profiles, gather_profiles_into, is_eligible, local_train,
    local_train_with, required_duplication,
};
use glap_cluster::{DataCenter, DcView, DemandSource, PmId, VmProfile};
use glap_codec::{CodecKind, FleetCodecs};
use glap_cyclon::{CyclonNode, CyclonOverlay, RoundIo};
use glap_dcsim::{stream_rng, SimRng, Stream};
use glap_par::parallel_for_each_timed;
use glap_profile::Profiler;
use glap_qlearn::{PairCaches, QArena, QTablePair};
use glap_telemetry::{ConvergenceMonitor, EventKind, OverlayHealth, Phase, Tracer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which phase a similarity sample was taken in (Figure 5 plots the
/// learning phase as "WOG" — without gossip — and the aggregation phase as
/// "WG").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainPhase {
    /// Learning phase (local training only).
    Learning,
    /// Aggregation phase (gossip merging).
    Aggregation,
}

/// Record of a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// `(phase, round-within-phase, mean pairwise cosine similarity)`.
    pub similarity: Vec<(TrainPhase, usize, f64)>,
    /// Number of PMs that ran at least one local training round.
    pub pms_trained: usize,
    /// Total Bellman updates applied.
    pub updates: u64,
}

/// How many random PM pairs to sample per similarity measurement.
const SIMILARITY_SAMPLE_PAIRS: usize = 300;

/// Runs the full two-phase training protocol.
///
/// Steps `dc` through `cfg.learning_rounds` workload rounds (so averages
/// accumulate), training eligible PMs each round, then runs
/// `cfg.aggregation_rounds` of gossip merging. Returns the per-PM tables
/// and a report. Set `record_similarity` to collect the Figure 5 series
/// (costs one sampled similarity sweep per round).
pub fn train<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
) -> (Vec<QTablePair>, TrainReport) {
    let (tables, report, _) = train_traced(
        dc,
        trace,
        cfg,
        master_seed,
        record_similarity,
        &Tracer::off(),
    );
    (tables, report)
}

/// Reusable buffers for the per-round convergence sample: one flat
/// `alive-PMs × (out ++ in)` value matrix, the unified reference vector
/// and the liveness mask. Allocated once per training run instead of
/// `O(n)` vectors per sampled round.
#[derive(Default)]
struct ConvergenceScratch {
    flat: Vec<f64>,
    reference: Vec<f64>,
    alive: Vec<bool>,
}

/// One monitor sample: population diameter + cosine-vs-unified + overlay
/// health, recorded into `monitor` and emitted as a `convergence_sampled`
/// event. Reads no randomness, so it cannot perturb the run.
fn sample_convergence(
    monitor: &mut ConvergenceMonitor,
    tracer: &Tracer,
    phase: Phase,
    cycle: u64,
    tables: &[QTablePair],
    overlay: &CyclonOverlay,
    scratch: &mut ConvergenceScratch,
) {
    // Every table has the same dense dimension (out ++ in), so the flat
    // matrix chunks back into per-PM rows exactly.
    let dim = tables
        .first()
        .map(|t| t.out.raw_values().len() + t.r#in.raw_values().len())
        .unwrap_or(0);
    scratch.flat.clear();
    for (i, t) in tables.iter().enumerate() {
        if overlay.is_alive(i as u32) {
            scratch.flat.extend_from_slice(t.out.raw_values());
            scratch.flat.extend_from_slice(t.r#in.raw_values());
        }
    }
    let unified = unified_table(tables);
    scratch.reference.clear();
    scratch
        .reference
        .extend_from_slice(unified.out.raw_values());
    scratch
        .reference
        .extend_from_slice(unified.r#in.raw_values());
    scratch.alive.clear();
    scratch
        .alive
        .extend((0..overlay.len()).map(|i| overlay.is_alive(i as u32)));
    let health = OverlayHealth::from_in_degrees(
        &overlay.in_degrees(),
        &scratch.alive,
        overlay.is_connected(),
    );
    let sample = monitor.record(
        phase,
        cycle,
        scratch.flat.chunks_exact(dim.max(1)),
        &scratch.reference,
        health,
    );
    tracer.emit(EventKind::ConvergenceSampled {
        cycle: cycle as u32,
        diameter: sample.diameter,
        cosine: sample.mean_cosine_to_ref,
        alive: health.alive as u32,
        connected: health.connected,
    });
}

/// [`train`] with an event tracer and convergence monitor.
///
/// With the tracer off this is byte-identical to [`train`]: tracing and
/// monitoring read no randomness, and the monitor only samples when the
/// tracer is on. With it on, every training round additionally records a
/// [`ConvergenceSample`](glap_telemetry::ConvergenceSample) — population
/// diameter (the machine-checkable face of Theorem 1), mean cosine
/// similarity to the unified table, and overlay health — and emits a
/// `convergence_sampled` event stamped with the phase
/// ([`Phase::Learning`] / [`Phase::Aggregation`]) and round.
pub fn train_traced<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    train_traced_with_threads(dc, trace, cfg, master_seed, record_similarity, tracer, None)
}

/// Per-PM training workspace, persisting across learning rounds so the
/// hot loop never re-allocates its profile list or shuffle indices.
#[derive(Default)]
struct LearnScratch {
    profiles: Vec<VmProfile>,
    idxs: Vec<usize>,
}

/// One eligible PM's unit of work for a learning round: disjoint `&mut`
/// borrows of everything the PM touches (its tables, its private RNG
/// stream, its overlay slot, its scratch), so the worker pool can run
/// the units in any order or interleaving without changing a single
/// byte of the result.
struct LearnTask<'a> {
    pm: PmId,
    table: &'a mut QTablePair,
    rng: &'a mut SimRng,
    node: &'a mut CyclonNode,
    scratch: &'a mut LearnScratch,
}

/// [`train_traced`] with an explicit worker-count override for the
/// learning phase (`None` resolves through `glap_par::resolve_threads`:
/// the `--threads` flag, then `GLAP_THREADS`, then all cores).
///
/// Each PM draws from its own `Stream::LearningPm(pm)` RNG, so the
/// result is byte-identical at every thread count — 1, 4 or N workers
/// produce the same tables, report and monitor series.
pub fn train_traced_with_threads<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
    threads: Option<usize>,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    train_instrumented(
        dc,
        trace,
        cfg,
        master_seed,
        record_similarity,
        tracer,
        threads,
        &Profiler::off(),
    )
}

/// [`train_traced_with_threads`] with a wall-clock [`Profiler`]
/// attached. Spans: `train` → `learn_round` {`workload_step`,
/// `shuffle`, `fanout`, `local_train` (+ per-worker
/// `worker_busy`/`worker_idle` samples), `similarity`, `convergence`}
/// and `agg_round` {`shuffle`, `merge`, `similarity`, `convergence`}.
///
/// Profiling is strictly observational (the profiler reads no
/// randomness and feeds nothing back), so results are byte-identical
/// with it on or off — the `integration_profile` suite pins this.
#[allow(clippy::too_many_arguments)]
pub fn train_instrumented<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
    threads: Option<usize>,
    profiler: &Profiler,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    let _train_span = profiler.span("train");
    cfg.validate().expect("invalid GLAP config");
    // The observational paths — similarity recording and event tracing —
    // sample boxed tables mid-round, so they run the two-pass reference
    // engine. Everything else runs the arena engine (flat slab storage,
    // dirty-set eligibility, fused last-learn+first-aggregate round),
    // which the fused-identity tests pin bit-equal to the reference.
    if record_similarity || tracer.is_on() {
        return train_two_pass_inner(
            dc,
            trace,
            cfg,
            master_seed,
            record_similarity,
            tracer,
            threads,
            profiler,
        );
    }
    let mut ctx = TrainerCtx::new(dc, cfg, master_seed, threads);
    if cfg.codec != CodecKind::Identity {
        // Coded exchanges carry per-peer codec state and are inherently
        // serial: learn on the arena, then aggregate through the legacy
        // coded round — the same RNG cursor positions as the reference.
        for _ in 0..cfg.learning_rounds {
            ctx.learn_round(dc, trace, profiler);
        }
        let mut tables = ctx.arena.export();
        let mut codecs = FleetCodecs::new(dc.n_pms(), cfg.codec);
        for _ in 0..cfg.aggregation_rounds {
            let _round_span = profiler.span("agg_round");
            {
                let _s = profiler.span("shuffle");
                ctx.overlay.run_round(&mut ctx.overlay_rng, RoundIo::default());
            }
            let _s = profiler.span("merge");
            aggregation_round(
                &mut tables,
                &mut ctx.overlay,
                &mut ctx.learn_rng,
                AggIo::default().with_codec(&mut codecs),
            );
        }
        return (tables, ctx.report(), ConvergenceMonitor::new());
    }
    ctx.run_uncoded(dc, trace, profiler);
    let tables = ctx.arena.export();
    (tables, ctx.report(), ConvergenceMonitor::new())
}

/// The pre-arena two-pass engine, kept callable for the byte-identity
/// suites: boxed per-PM tables, full-scan eligibility, separate learn
/// and aggregate sweeps. [`train_instrumented`] routes the observational
/// paths here; tests call it directly to pin the arena engine against
/// it bit for bit.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn train_two_pass_reference<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
    threads: Option<usize>,
    profiler: &Profiler,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    let _train_span = profiler.span("train");
    cfg.validate().expect("invalid GLAP config");
    train_two_pass_inner(
        dc,
        trace,
        cfg,
        master_seed,
        record_similarity,
        tracer,
        threads,
        profiler,
    )
}

#[allow(clippy::too_many_arguments)]
fn train_two_pass_inner<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    record_similarity: bool,
    tracer: &Tracer,
    threads: Option<usize>,
    profiler: &Profiler,
) -> (Vec<QTablePair>, TrainReport, ConvergenceMonitor) {
    let n = dc.n_pms();
    let mut tables: Vec<QTablePair> = (0..n).map(|_| QTablePair::new(cfg.qparams)).collect();
    let mut overlay = CyclonOverlay::new(n, cfg.cyclon_cache, cfg.cyclon_shuffle);
    let mut overlay_rng = stream_rng(master_seed, Stream::Overlay);
    let mut learn_rng = stream_rng(master_seed, Stream::Learning);
    overlay.bootstrap_random(&mut overlay_rng);
    for pm in dc.pms() {
        if !pm.is_active() {
            overlay.set_dead(pm.id().0);
        }
    }

    let mut report = TrainReport::default();
    let mut monitor = ConvergenceMonitor::new();
    let mut trained = vec![false; n];
    // Private per-PM randomness: the stream cursor advances with the PM
    // across rounds, independent of every other PM and of how the round
    // is scheduled over workers.
    let mut pm_rngs: Vec<SimRng> = (0..n)
        .map(|i| stream_rng(master_seed, Stream::LearningPm(i as u32)))
        .collect();
    let mut scratch: Vec<LearnScratch> = (0..n).map(|_| LearnScratch::default()).collect();
    let mut conv_scratch = ConvergenceScratch::default();

    // ---- Learning phase (WOG) -------------------------------------
    tracer.set_phase(Phase::Learning);
    for round in 0..cfg.learning_rounds {
        let _round_span = profiler.span("learn_round");
        tracer.begin_round(round as u64);
        {
            let _s = profiler.span("workload_step");
            dc.step(trace);
        }
        {
            let _s = profiler.span("shuffle");
            overlay.run_round(&mut overlay_rng, RoundIo::traced(tracer));
        }
        {
            // Eligibility is decided up front from the shared snapshot;
            // the workers then only touch their own task's state plus
            // the read-only data-center view and liveness mask.
            let fanout_span = profiler.span("fanout");
            let view = dc.view();
            let (nodes, alive) = overlay.split_mut();
            let mut tasks: Vec<LearnTask<'_>> = tables
                .iter_mut()
                .zip(pm_rngs.iter_mut())
                .zip(nodes.iter_mut())
                .zip(scratch.iter_mut())
                .enumerate()
                .filter(|(i, _)| is_eligible(dc, PmId(*i as u32), cfg))
                .map(|(i, (((table, rng), node), scr))| LearnTask {
                    pm: PmId(i as u32),
                    table,
                    rng,
                    node,
                    scratch: scr,
                })
                .collect();
            drop(fanout_span);
            let train_span = profiler.span("local_train");
            let timing = parallel_for_each_timed(&mut tasks, threads, |t| {
                let neighbor = CyclonOverlay::random_alive_peer_in(t.node, alive, t.rng).map(PmId);
                gather_profiles_into(
                    view,
                    t.pm,
                    neighbor,
                    cfg.profile_duplication,
                    &mut t.scratch.profiles,
                );
                local_train_with(
                    t.table,
                    &t.scratch.profiles,
                    cfg.learning_iterations,
                    t.rng,
                    &mut t.scratch.idxs,
                );
            });
            if profiler.is_on() {
                for w in &timing.workers {
                    profiler.record_concurrent_ns("worker_busy", w.busy_ns);
                    profiler.record_concurrent_ns(
                        "worker_idle",
                        timing.wall_ns.saturating_sub(w.busy_ns),
                    );
                }
            }
            drop(train_span);
            for t in &tasks {
                trained[t.pm.0 as usize] = true;
                report.updates += 2 * cfg.learning_iterations as u64;
            }
        }
        if record_similarity {
            let _s = profiler.span("similarity");
            let sim = mean_pairwise_similarity(
                &tables,
                &overlay,
                SIMILARITY_SAMPLE_PAIRS,
                &mut learn_rng,
            );
            report.similarity.push((TrainPhase::Learning, round, sim));
        }
        if tracer.is_on() {
            let _s = profiler.span("convergence");
            sample_convergence(
                &mut monitor,
                tracer,
                Phase::Learning,
                round as u64,
                &tables,
                &overlay,
                &mut conv_scratch,
            );
        }
        tracer.end_round();
    }

    // ---- Aggregation phase (WG) ------------------------------------
    tracer.set_phase(Phase::Aggregation);
    // Per-PM codec state persists across the whole phase (deltas diff
    // against the last completed exchange). Identity stays on the
    // legacy verbatim-merge path — bit-identical tables and telemetry.
    let mut codecs = (cfg.codec != CodecKind::Identity).then(|| FleetCodecs::new(n, cfg.codec));
    for round in 0..cfg.aggregation_rounds {
        let _round_span = profiler.span("agg_round");
        tracer.begin_round(round as u64);
        {
            let _s = profiler.span("shuffle");
            overlay.run_round(&mut overlay_rng, RoundIo::traced(tracer));
        }
        {
            let _s = profiler.span("merge");
            if let Some(codecs) = codecs.as_mut() {
                let io = AggIo::traced(tracer).with_codec(codecs);
                aggregation_round(&mut tables, &mut overlay, &mut learn_rng, io);
            } else {
                // Verbatim merges have no cross-exchange codec state, so
                // the round shards across the worker pool.
                aggregation_round_sharded(
                    &mut tables,
                    &mut overlay,
                    &mut learn_rng,
                    threads,
                    AggIo::traced(tracer),
                );
            }
        }
        if record_similarity {
            let _s = profiler.span("similarity");
            let sim = mean_pairwise_similarity(
                &tables,
                &overlay,
                SIMILARITY_SAMPLE_PAIRS,
                &mut learn_rng,
            );
            report
                .similarity
                .push((TrainPhase::Aggregation, round, sim));
        }
        if tracer.is_on() {
            let _s = profiler.span("convergence");
            sample_convergence(
                &mut monitor,
                tracer,
                Phase::Aggregation,
                round as u64,
                &tables,
                &overlay,
                &mut conv_scratch,
            );
        }
        tracer.end_round();
    }

    report.pms_trained = trained.iter().filter(|&&t| t).count();
    (tables, report, monitor)
}

/// Runs the arena training engine and returns the flat [`QArena`]
/// directly — no boxed export, so the scale paths (benches, the 250k-PM
/// smoke, `scalability_eval`) never pay the transient doubling of
/// materializing `n` boxed pairs next to the slab. Storage backing
/// honors `GLAP_ARENA_MMAP` (see [`glap_qlearn::slab`]).
///
/// Byte-for-byte the tables equal what [`train`] returns for the same
/// inputs (with similarity recording off); the report is the same too.
/// Only the uncoded path scales this way — coded runs go through
/// [`train`] (asserted).
pub fn train_arena<D: DemandSource + ?Sized>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    threads: Option<usize>,
    profiler: &Profiler,
) -> (QArena, TrainReport) {
    let _train_span = profiler.span("train");
    cfg.validate().expect("invalid GLAP config");
    assert_eq!(
        cfg.codec,
        CodecKind::Identity,
        "train_arena is the uncoded scale path; coded runs go through train()"
    );
    let mut ctx = TrainerCtx::new(dc, cfg, master_seed, threads);
    ctx.run_uncoded(dc, trace, profiler);
    let report = ctx.report();
    (ctx.arena, report)
}

/// One eligible PM's unit of work for an arena learning round — the
/// arena twin of [`LearnTask`], with the slab accessed through a shared
/// [`ArenaPtr`](glap_qlearn::ArenaPtr) instead of a `&mut QTablePair`.
struct ArenaLearnTask<'a> {
    pm: PmId,
    rng: &'a mut SimRng,
    node: &'a mut CyclonNode,
    scratch: &'a mut LearnScratch,
    caches: &'a mut PairCaches,
}

/// Shared raw state of one fused sweep: every per-PM resource the
/// train-on-first-touch path needs, as plain pointers so a wave task can
/// claim its two endpoints without lifetime gymnastics.
struct FusedShared {
    arena: glap_qlearn::ArenaPtr,
    caches: *mut PairCaches,
    scratch: *mut LearnScratch,
    rngs: *mut SimRng,
    picks: *const u32,
    eligible: *const bool,
    touched: *mut bool,
}

// SAFETY: tasks of one wave touch vertex-disjoint PM indices, so no two
// threads ever alias a PM's slots; the pool joins between waves.
unsafe impl Send for FusedShared {}
unsafe impl Sync for FusedShared {}

impl FusedShared {
    /// First touch of PM `p` in the fused sweep: run its local training
    /// now if it is eligible and has not trained yet. Called before any
    /// merge involving `p`, which is what makes the interleaving
    /// byte-equal to train-everything-then-merge: training reads only
    /// the PM's own table, RNG stream and the (frozen) data-center view.
    ///
    /// # Safety
    ///
    /// The caller must own PM `p` exclusively for the duration of the
    /// call (wave vertex-disjointness), and every pointer must outlive
    /// it.
    unsafe fn touch(&self, p: u32, view: DcView<'_>, dup: usize, iters: usize) {
        let i = p as usize;
        let touched = &mut *self.touched.add(i);
        if *touched {
            return;
        }
        *touched = true;
        if !*self.eligible.add(i) {
            return;
        }
        let rng = &mut *self.rngs.add(i);
        let scr = &mut *self.scratch.add(i);
        let caches = &mut *self.caches.add(i);
        let pick = *self.picks.add(i);
        let neighbor = (pick != u32::MAX).then_some(PmId(pick));
        gather_profiles_into(view, PmId(p), neighbor, dup, &mut scr.profiles);
        caches.reset();
        let mut pair = self.arena.pair_mut(i, caches);
        local_train_with(&mut pair, &scr.profiles, iters, rng, &mut scr.idxs);
    }
}

/// The arena training engine: round-stage state over `{arena, overlay,
/// RNG cursors, per-PM scratch}` with one method per round shape —
/// plain learning round, plain aggregation round, and the fused
/// last-learn+first-aggregate round (split into a prepare and an apply
/// stage so a checkpoint can land between them).
///
/// Byte-identity with the two-pass reference holds stage by stage:
/// training goes through the same [`TrainTarget`](glap_qlearn::
/// TrainTarget) loop and kernels on the same per-PM RNG streams,
/// eligibility comes from the dirty-set index (pinned equal to the full
/// scan), and merges follow the same [`AggPlan`] wave semantics.
struct TrainerCtx {
    cfg: GlapConfig,
    threads: Option<usize>,
    arena: QArena,
    caches: Vec<PairCaches>,
    overlay: CyclonOverlay,
    overlay_rng: SimRng,
    learn_rng: SimRng,
    pm_rngs: Vec<SimRng>,
    scratch: Vec<LearnScratch>,
    trained: Vec<bool>,
    updates: u64,
    /// Eligibility snapshot of the current round (fused path).
    eligible: Vec<bool>,
    /// Learning-neighbour pick per PM (`u32::MAX` = none), drawn before
    /// the aggregation shuffle mutates the overlay views.
    picks: Vec<u32>,
    /// Whether the fused sweep has trained-or-skipped a PM yet.
    touched: Vec<bool>,
}

impl TrainerCtx {
    fn new(dc: &DataCenter, cfg: &GlapConfig, master_seed: u64, threads: Option<usize>) -> Self {
        let n = dc.n_pms();
        let mut overlay = CyclonOverlay::new(n, cfg.cyclon_cache, cfg.cyclon_shuffle);
        let mut overlay_rng = stream_rng(master_seed, Stream::Overlay);
        overlay.bootstrap_random(&mut overlay_rng);
        for pm in dc.pms() {
            if !pm.is_active() {
                overlay.set_dead(pm.id().0);
            }
        }
        TrainerCtx {
            cfg: *cfg,
            threads,
            arena: QArena::from_env(n, cfg.qparams),
            caches: (0..n).map(|_| PairCaches::default()).collect(),
            overlay,
            overlay_rng,
            learn_rng: stream_rng(master_seed, Stream::Learning),
            pm_rngs: (0..n)
                .map(|i| stream_rng(master_seed, Stream::LearningPm(i as u32)))
                .collect(),
            scratch: (0..n).map(|_| LearnScratch::default()).collect(),
            trained: vec![false; n],
            updates: 0,
            eligible: vec![false; n],
            picks: vec![u32::MAX; n],
            touched: vec![false; n],
        }
    }

    /// The uncoded round schedule: when both phases have at least one
    /// round, the last learning round and the first aggregation round
    /// fuse into a single sweep that touches each Q-table once.
    fn run_uncoded<D: DemandSource + ?Sized>(
        &mut self,
        dc: &mut DataCenter,
        trace: &mut D,
        profiler: &Profiler,
    ) {
        let fuse = self.cfg.learning_rounds >= 1 && self.cfg.aggregation_rounds >= 1;
        for _ in 0..self.cfg.learning_rounds - usize::from(fuse) {
            self.learn_round(dc, trace, profiler);
        }
        if fuse {
            self.fused_round(dc, trace, profiler);
        }
        for _ in 0..self.cfg.aggregation_rounds - usize::from(fuse) {
            self.agg_round(profiler);
        }
    }

    fn report(&self) -> TrainReport {
        TrainReport {
            similarity: Vec::new(),
            pms_trained: self.trained.iter().filter(|&&t| t).count(),
            updates: self.updates,
        }
    }

    /// One plain learning round — the arena twin of the reference loop
    /// body, with eligibility from the data center's dirty-set index
    /// instead of a full scan.
    fn learn_round<D: DemandSource + ?Sized>(
        &mut self,
        dc: &mut DataCenter,
        trace: &mut D,
        profiler: &Profiler,
    ) {
        let _round_span = profiler.span("learn_round");
        {
            let _s = profiler.span("workload_step");
            dc.step(trace);
        }
        {
            let _s = profiler.span("shuffle");
            self.overlay.run_round(&mut self.overlay_rng, RoundIo::default());
        }
        let fanout_span = profiler.span("fanout");
        dc.refresh_eligibility(self.cfg.learning_threshold);
        let elig = dc.eligible_flags();
        let view = dc.view();
        let ptr = self.arena.as_ptr();
        let (nodes, alive) = self.overlay.split_mut();
        let mut tasks: Vec<ArenaLearnTask<'_>> = self
            .pm_rngs
            .iter_mut()
            .zip(nodes.iter_mut())
            .zip(self.scratch.iter_mut())
            .zip(self.caches.iter_mut())
            .enumerate()
            .filter(|&(i, _)| elig[i])
            .map(|(i, (((rng, node), scratch), caches))| ArenaLearnTask {
                pm: PmId(i as u32),
                rng,
                node,
                scratch,
                caches,
            })
            .collect();
        drop(fanout_span);
        let train_span = profiler.span("local_train");
        let (dup, iters) = (self.cfg.profile_duplication, self.cfg.learning_iterations);
        let timing = parallel_for_each_timed(&mut tasks, self.threads, |t| {
            let neighbor = CyclonOverlay::random_alive_peer_in(t.node, alive, t.rng).map(PmId);
            gather_profiles_into(view, t.pm, neighbor, dup, &mut t.scratch.profiles);
            t.caches.reset();
            // SAFETY: tasks carry disjoint PM indices, so this view is
            // the only access to PM `pm`'s slots; the arena outlives the
            // pool run.
            let mut pair = unsafe { ptr.pair_mut(t.pm.0 as usize, t.caches) };
            local_train_with(&mut pair, &t.scratch.profiles, iters, t.rng, &mut t.scratch.idxs);
        });
        if profiler.is_on() {
            for w in &timing.workers {
                profiler.record_concurrent_ns("worker_busy", w.busy_ns);
                profiler
                    .record_concurrent_ns("worker_idle", timing.wall_ns.saturating_sub(w.busy_ns));
            }
        }
        drop(train_span);
        for t in &tasks {
            self.trained[t.pm.0 as usize] = true;
            self.updates += 2 * iters as u64;
        }
    }

    /// The fused last-learn + first-aggregate round.
    fn fused_round<D: DemandSource + ?Sized>(
        &mut self,
        dc: &mut DataCenter,
        trace: &mut D,
        profiler: &Profiler,
    ) {
        let _round_span = profiler.span("fused_round");
        let mut plan = self.fused_prepare(dc, trace, profiler);
        self.fused_apply(dc, &mut plan, profiler);
    }

    /// Stage 1 of the fused round: everything that consumes shared
    /// randomness, in exactly the reference order — workload step,
    /// learning shuffle, learning-neighbour picks (the first draw of
    /// each PM's stream this round, taken against the learning round's
    /// overlay views *before* the aggregation shuffle mutates them),
    /// aggregation shuffle, then the merge plan off the phase RNG.
    fn fused_prepare<D: DemandSource + ?Sized>(
        &mut self,
        dc: &mut DataCenter,
        trace: &mut D,
        profiler: &Profiler,
    ) -> AggPlan {
        {
            let _s = profiler.span("workload_step");
            dc.step(trace);
        }
        {
            let _s = profiler.span("shuffle");
            self.overlay.run_round(&mut self.overlay_rng, RoundIo::default());
        }
        {
            let _s = profiler.span("picks");
            dc.refresh_eligibility(self.cfg.learning_threshold);
            self.eligible.copy_from_slice(dc.eligible_flags());
            let (nodes, alive) = self.overlay.split_mut();
            for (i, node) in nodes.iter_mut().enumerate() {
                self.picks[i] = u32::MAX;
                if !self.eligible[i] {
                    continue;
                }
                if let Some(q) = CyclonOverlay::random_alive_peer_in(node, alive, &mut self.pm_rngs[i])
                {
                    self.picks[i] = q;
                }
            }
        }
        {
            let _s = profiler.span("shuffle");
            self.overlay.run_round(&mut self.overlay_rng, RoundIo::default());
        }
        let _s = profiler.span("plan");
        build_agg_plan(&mut self.overlay, &mut self.learn_rng, self.threads)
    }

    /// Stage 2 of the fused round: the single sweep. Walks the merge
    /// waves in order; each exchange first trains its two endpoints
    /// (train-on-first-touch — the table is hot in cache when its merge
    /// runs), then merges them. Eligible PMs no exchange touches train
    /// in a tail pass. Equal to train-all-then-merge because a PM's
    /// training precedes every merge involving it and reads nothing a
    /// merge writes.
    fn fused_apply(&mut self, dc: &DataCenter, plan: &mut AggPlan, profiler: &Profiler) {
        let _span = profiler.span("fused_sweep");
        let view = dc.view();
        let (dup, iters) = (self.cfg.profile_duplication, self.cfg.learning_iterations);
        for t in self.touched.iter_mut() {
            *t = false;
        }
        let shared = FusedShared {
            arena: self.arena.as_ptr(),
            caches: self.caches.as_mut_ptr(),
            scratch: self.scratch.as_mut_ptr(),
            rngs: self.pm_rngs.as_mut_ptr(),
            picks: self.picks.as_ptr(),
            eligible: self.eligible.as_ptr(),
            touched: self.touched.as_mut_ptr(),
        };
        for wave in plan.by_wave.iter_mut() {
            glap_par::parallel_for_each(wave, self.threads, |&mut (p, q)| {
                // SAFETY: pairs of one wave are vertex-disjoint, so this
                // task owns PMs p and q (tables, caches, scratch, RNGs,
                // touched flags) exclusively until the pool joins.
                unsafe {
                    shared.touch(p, view, dup, iters);
                    shared.touch(q, view, dup, iters);
                    shared.arena.merge_pms(p as usize, q as usize);
                }
            });
        }
        let mut tail: Vec<u32> = (0..self.touched.len() as u32)
            .filter(|&i| self.eligible[i as usize] && !self.touched[i as usize])
            .collect();
        glap_par::parallel_for_each(&mut tail, self.threads, |&mut p| {
            // SAFETY: tail indices are distinct and belong to no wave
            // task (all waves have joined).
            unsafe {
                shared.touch(p, view, dup, iters);
            }
        });
        for (i, &e) in self.eligible.iter().enumerate() {
            if e {
                self.trained[i] = true;
                self.updates += 2 * iters as u64;
            }
        }
    }

    /// One plain aggregation round on the arena: shuffle, plan, merge
    /// waves — no emission sweep (the arena engine runs untraced).
    fn agg_round(&mut self, profiler: &Profiler) {
        let _round_span = profiler.span("agg_round");
        {
            let _s = profiler.span("shuffle");
            self.overlay.run_round(&mut self.overlay_rng, RoundIo::default());
        }
        let _s = profiler.span("merge");
        let mut plan = build_agg_plan(&mut self.overlay, &mut self.learn_rng, self.threads);
        let ptr = self.arena.as_ptr();
        for wave in plan.by_wave.iter_mut() {
            glap_par::parallel_for_each(wave, self.threads, |&mut (p, q)| {
                // SAFETY: wave pairs are vertex-disjoint (see AggPlan);
                // the arena outlives the pool run.
                unsafe { ptr.merge_pms(p as usize, q as usize) }
            });
        }
    }
}

/// Collapses per-PM tables into one unified table by merging everything —
/// the fixed point the gossip converges to (union of keys, averaged
/// values). Used to hand one shared table to the consolidation component
/// after convergence.
pub fn unified_table(tables: &[QTablePair]) -> QTablePair {
    let mut unified = tables.first().cloned().unwrap_or_default();
    for t in &tables[1..] {
        unified.merge(t);
    }
    unified
}

/// Re-runs the two-phase protocol *in place* on a live data center —
/// no workload stepping, using the demand averages the VMs have already
/// accumulated in production. This is the paper's re-trigger path:
/// "the learning component runs as required by a predefined policy, e.g.
/// if the arrival and departure rates of VMs exceed a threshold compared
/// to the last learning time or based on a fixed time interval" (§IV-B).
///
/// `passes` controls how many local-training sweeps each eligible PM runs
/// (each sweep applies `cfg.learning_iterations` simulated migrations).
/// Returns the unified post-aggregation table.
pub fn retrain_in_place<R: Rng>(
    dc: &DataCenter,
    cfg: &GlapConfig,
    passes: usize,
    rng: &mut R,
) -> QTablePair {
    let n = dc.n_pms();
    let mut tables: Vec<QTablePair> = (0..n).map(|_| QTablePair::new(cfg.qparams)).collect();
    let mut overlay = CyclonOverlay::new(n, cfg.cyclon_cache, cfg.cyclon_shuffle);
    // Bootstrap with the live membership: sleeping PMs are out.
    overlay.bootstrap_random(rng);
    for pm in dc.pms() {
        if !pm.is_active() {
            overlay.set_dead(pm.id().0);
        }
    }
    for _ in 0..passes {
        overlay.run_round(rng, RoundIo::default());
        for (i, table) in tables.iter_mut().enumerate() {
            let pm = PmId(i as u32);
            if !is_eligible(dc, pm, cfg) {
                continue;
            }
            let neighbor = overlay.random_alive_peer(i as u32, rng).map(PmId);
            // Adaptive duplication: on a consolidated cluster the eligible
            // PMs are the light ones, so the fixed factor is not enough to
            // cover high-load states ("duplicate vms if required").
            let base = gather_profiles(dc, pm, neighbor, 1);
            let dup = required_duplication(&base, cfg.profile_duplication);
            let profiles = duplicate_profiles(base, dup);
            local_train(table, &profiles, cfg.learning_iterations, rng);
        }
    }
    let mut codecs = (cfg.codec != CodecKind::Identity).then(|| FleetCodecs::new(n, cfg.codec));
    for _ in 0..cfg.aggregation_rounds {
        overlay.run_round(rng, RoundIo::default());
        let mut io = AggIo::default();
        if let Some(codecs) = codecs.as_mut() {
            io = io.with_codec(codecs);
        }
        aggregation_round(&mut tables, &mut overlay, rng, io);
    }
    unified_table(&tables)
}

/// Convenience wrapper: trains and returns only the unified table.
pub fn train_unified<D: DemandSource + ?Sized, R: Rng>(
    dc: &mut DataCenter,
    trace: &mut D,
    cfg: &GlapConfig,
    master_seed: u64,
    _rng: &mut R,
) -> QTablePair {
    let (tables, _) = train(dc, trace, cfg, master_seed, false);
    unified_table(&tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, Resources, VmId, VmSpec};

    fn setup(n_pms: usize, ratio: usize) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        let mut rng = stream_rng(1, Stream::Placement);
        dc.random_placement(&mut rng);
        dc
    }

    fn small_cfg() -> GlapConfig {
        GlapConfig {
            learning_rounds: 10,
            aggregation_rounds: 10,
            learning_iterations: 10,
            ..Default::default()
        }
    }

    fn wave_trace(vm: VmId, round: u64) -> Resources {
        let x = 0.3 + 0.25 * ((round as f64 / 7.0) + vm.0 as f64).sin();
        Resources::splat(x)
    }

    #[test]
    fn training_produces_knowledge_and_convergence() {
        let mut dc = setup(30, 3);
        let cfg = small_cfg();
        let (tables, report) = train(&mut dc, &mut wave_trace, &cfg, 42, true);
        assert!(report.pms_trained > 0);
        assert!(report.updates > 0);
        assert!(tables.iter().any(|t| t.trained_pairs() > 0));
        // Similarity series: learning phase entries then aggregation.
        let learn_sims: Vec<f64> = report
            .similarity
            .iter()
            .filter(|(p, _, _)| *p == TrainPhase::Learning)
            .map(|&(_, _, s)| s)
            .collect();
        let agg_sims: Vec<f64> = report
            .similarity
            .iter()
            .filter(|(p, _, _)| *p == TrainPhase::Aggregation)
            .map(|&(_, _, s)| s)
            .collect();
        assert_eq!(learn_sims.len(), cfg.learning_rounds);
        assert_eq!(agg_sims.len(), cfg.aggregation_rounds);
        // The paper's headline: aggregation drives similarity near 1.
        let final_sim = *agg_sims.last().unwrap();
        assert!(final_sim > 0.99, "final similarity {final_sim}");
        // And learning alone plateaus lower than the aggregated result.
        let final_learn = *learn_sims.last().unwrap();
        assert!(
            final_learn < final_sim,
            "WOG {final_learn} vs WG {final_sim}"
        );
    }

    #[test]
    fn unified_table_covers_union_of_knowledge() {
        let mut dc = setup(20, 2);
        let (tables, _) = train(&mut dc, &mut wave_trace, &small_cfg(), 7, false);
        let uni = unified_table(&tables);
        let max_individual = tables.iter().map(|t| t.trained_pairs()).max().unwrap();
        assert!(uni.trained_pairs() >= max_individual);
    }

    #[test]
    fn training_is_deterministic() {
        let run = |seed: u64| {
            let mut dc = setup(15, 2);
            let (tables, _) = train(&mut dc, &mut wave_trace, &small_cfg(), seed, false);
            unified_table(&tables)
        };
        assert_eq!(run(9), run(9));
    }

    fn table_bytes(t: &QTablePair) -> Vec<u8> {
        use glap_snapshot::Checkpointable;
        let mut w = glap_snapshot::Writer::new();
        t.save(&mut w);
        w.into_bytes()
    }

    /// The arena engine (fused round, dirty-set eligibility, masked
    /// merges, row-max caches) must reproduce the two-pass reference bit
    /// for bit — at any thread count, with sleeping PMs in the mix, and
    /// across the aggregation-round edge cases that disable fusion.
    #[test]
    fn arena_engine_matches_two_pass_reference_bitwise() {
        for (agg_rounds, sleep_some) in [(10usize, false), (10, true), (0, false), (1, true)] {
            let cfg = GlapConfig {
                aggregation_rounds: agg_rounds,
                ..small_cfg()
            };
            let reference = {
                let mut dc = setup(25, 2);
                if sleep_some {
                    let empty: Vec<PmId> =
                        dc.pms().filter(|p| p.is_empty()).map(|p| p.id()).collect();
                    for pm in empty {
                        dc.sleep_if_empty(pm);
                    }
                }
                let (tables, report, _) = train_two_pass_reference(
                    &mut dc,
                    &mut wave_trace,
                    &cfg,
                    77,
                    false,
                    &Tracer::off(),
                    Some(1),
                    &Profiler::off(),
                );
                (
                    tables.iter().map(table_bytes).collect::<Vec<_>>(),
                    report.pms_trained,
                    report.updates,
                )
            };
            for threads in [1usize, 4] {
                let mut dc = setup(25, 2);
                if sleep_some {
                    let empty: Vec<PmId> =
                        dc.pms().filter(|p| p.is_empty()).map(|p| p.id()).collect();
                    for pm in empty {
                        dc.sleep_if_empty(pm);
                    }
                }
                let (tables, report, _) = train_instrumented(
                    &mut dc,
                    &mut wave_trace,
                    &cfg,
                    77,
                    false,
                    &Tracer::off(),
                    Some(threads),
                    &Profiler::off(),
                );
                assert_eq!(
                    tables.iter().map(table_bytes).collect::<Vec<_>>(),
                    reference.0,
                    "agg_rounds={agg_rounds} sleep={sleep_some} threads={threads}"
                );
                assert_eq!((report.pms_trained, report.updates), (reference.1, reference.2));
            }
        }
    }

    /// `train_arena` returns the same tables `train` exports, without
    /// the boxed materialization.
    #[test]
    fn train_arena_matches_boxed_export() {
        let cfg = small_cfg();
        let boxed = {
            let mut dc = setup(20, 2);
            train(&mut dc, &mut wave_trace, &cfg, 13, false).0
        };
        let mut dc = setup(20, 2);
        let (arena, report) =
            train_arena(&mut dc, &mut wave_trace, &cfg, 13, None, &Profiler::off());
        assert!(report.pms_trained > 0);
        for (i, b) in boxed.iter().enumerate() {
            assert_eq!(arena.export_pm(i), *b, "pm {i}");
        }
    }

    /// Coded runs keep their pre-arena bytes: arena learning followed by
    /// the legacy coded aggregation equals the reference end to end.
    #[test]
    fn coded_runs_match_two_pass_reference_bitwise() {
        let cfg = GlapConfig {
            codec: CodecKind::Delta,
            ..small_cfg()
        };
        let reference = {
            let mut dc = setup(20, 2);
            let (tables, _, _) = train_two_pass_reference(
                &mut dc,
                &mut wave_trace,
                &cfg,
                5,
                false,
                &Tracer::off(),
                None,
                &Profiler::off(),
            );
            tables.iter().map(table_bytes).collect::<Vec<_>>()
        };
        let mut dc = setup(20, 2);
        let (tables, _) = train(&mut dc, &mut wave_trace, &cfg, 5, false);
        assert_eq!(tables.iter().map(table_bytes).collect::<Vec<_>>(), reference);
    }

    /// A checkpoint taken mid-fused-round — after the prepare stage
    /// drew all shared randomness, before the sweep — fully captures the
    /// remaining work: restoring the arena bytes and the per-PM RNG
    /// cursors into a clobbered context and re-applying the plan matches
    /// the uninterrupted run bit for bit.
    #[test]
    fn mid_fused_round_checkpoint_resumes_bitwise() {
        use glap_dcsim::{restore_rng, save_rng};

        let cfg = small_cfg();
        let mut dc = setup(25, 2);
        let mut ctx = TrainerCtx::new(&dc, &cfg, 21, Some(2));
        for _ in 0..cfg.learning_rounds - 1 {
            ctx.learn_round(&mut dc, &mut wave_trace, &Profiler::off());
        }
        let plan = ctx.fused_prepare(&mut dc, &mut wave_trace, &Profiler::off());

        // Snapshot the mid-round state: every PM's pair plus every
        // per-PM RNG cursor, through the real snapshot codec.
        let mut w = glap_snapshot::Writer::new();
        for i in 0..ctx.arena.len() {
            ctx.arena.save_pm(i, &mut w);
        }
        for rng in &ctx.pm_rngs {
            save_rng(rng, &mut w);
        }
        let snapshot = w.into_bytes();

        // Uninterrupted run.
        let mut plan_a = plan.clone();
        ctx.fused_apply(&dc, &mut plan_a, &Profiler::off());
        let want: Vec<QTablePair> = (0..ctx.arena.len()).map(|i| ctx.arena.export_pm(i)).collect();

        // Clobber the mid-round state (the apply above mutated it), then
        // restore from the snapshot and re-apply the same plan.
        let mut r = glap_snapshot::Reader::new(&snapshot);
        for i in 0..ctx.arena.len() {
            ctx.arena.restore_pm(i, &mut r).unwrap();
            ctx.caches[i].reset();
        }
        for rng in ctx.pm_rngs.iter_mut() {
            *rng = restore_rng(&mut r).unwrap();
        }
        assert!(r.is_exhausted());
        let mut plan_b = plan.clone();
        ctx.fused_apply(&dc, &mut plan_b, &Profiler::off());
        for (i, want) in want.iter().enumerate() {
            assert_eq!(ctx.arena.export_pm(i), *want, "pm {i} diverged after resume");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// Property form of [`mid_fused_round_checkpoint_resumes_bitwise`]:
        /// for random worlds, schedules, seeds and worker counts, a
        /// checkpoint between the fused round's prepare and apply stages
        /// resumes bit-identically.
        #[test]
        fn mid_fused_round_checkpoint_property(
            seed in 0u64..1000,
            n_pms in 8usize..32,
            ratio in 1usize..4,
            learning_rounds in 1usize..5,
            threads_idx in 0usize..3,
        ) {
            use glap_dcsim::{restore_rng, save_rng};
            use proptest::prelude::prop_assert_eq;

            let threads = [1usize, 2, 4][threads_idx];

            let cfg = GlapConfig {
                learning_rounds,
                aggregation_rounds: 2,
                learning_iterations: 6,
                ..Default::default()
            };
            let mut dc = setup(n_pms, ratio);
            let mut trace = move |vm: VmId, r: u64| {
                let x = 0.3 + 0.25 * ((r as f64 / 7.0) + f64::from(vm.0) + seed as f64).sin();
                Resources::splat(x)
            };
            let mut ctx = TrainerCtx::new(&dc, &cfg, seed, Some(threads));
            for _ in 0..cfg.learning_rounds - 1 {
                ctx.learn_round(&mut dc, &mut trace, &Profiler::off());
            }
            let plan = ctx.fused_prepare(&mut dc, &mut trace, &Profiler::off());

            let mut w = glap_snapshot::Writer::new();
            for i in 0..ctx.arena.len() {
                ctx.arena.save_pm(i, &mut w);
            }
            for rng in &ctx.pm_rngs {
                save_rng(rng, &mut w);
            }
            let snapshot = w.into_bytes();

            let mut plan_a = plan.clone();
            ctx.fused_apply(&dc, &mut plan_a, &Profiler::off());
            let want: Vec<QTablePair> =
                (0..ctx.arena.len()).map(|i| ctx.arena.export_pm(i)).collect();

            let mut r = glap_snapshot::Reader::new(&snapshot);
            for i in 0..ctx.arena.len() {
                ctx.arena.restore_pm(i, &mut r).unwrap();
                ctx.caches[i].reset();
            }
            for rng in ctx.pm_rngs.iter_mut() {
                *rng = restore_rng(&mut r).unwrap();
            }
            let mut plan_b = plan.clone();
            ctx.fused_apply(&dc, &mut plan_b, &Profiler::off());
            for (i, want) in want.iter().enumerate() {
                prop_assert_eq!(&ctx.arena.export_pm(i), want, "pm {} diverged after resume", i);
            }
        }
    }

    #[test]
    fn sleeping_pms_do_not_train() {
        let mut dc = setup(10, 2);
        // Empty PM 0 by construction is unlikely; force-sleep an empty one
        // if any, otherwise skip.
        let empty: Vec<PmId> = dc.pms().filter(|p| p.is_empty()).map(|p| p.id()).collect();
        for pm in &empty {
            dc.sleep_if_empty(*pm);
        }
        let (_, report) = train(&mut dc, &mut wave_trace, &small_cfg(), 3, false);
        assert!(report.pms_trained <= 10 - empty.len());
    }
}
