//! The gossip workload-consolidation component (Algorithm 3).
//!
//! Each round every active PM push–pulls state with one random Cyclon
//! neighbour. If either side is overloaded it evicts VMs until it no longer
//! is; otherwise the PM with the lower total current utilization becomes
//! the *sender* and tries to empty itself to switch off. Every candidate
//! migration runs through the learned knowledge:
//!
//! * `π_out` picks the eviction action with the greatest `φ_out` value for
//!   the sender's (average-demand) state; among VMs matching the action,
//!   the cheapest to move (least memory) is chosen;
//! * `π_in` vetoes the migration if `φ_in(s_q, a) < 0` — the sender decides
//!   *on behalf of the target* because all PMs own identical Q-values,
//!   which is what eliminates an extra round trip;
//! * a capacity check ensures the target can host the VM's current demand.
//!
//! Emptied PMs go to sleep and leave the overlay.

use crate::aggregation::{aggregation_round, aggregation_round_sharded, AggIo};
use crate::config::GlapConfig;
use crate::learning::{
    duplicate_profiles, gather_profiles, is_eligible, local_train, required_duplication,
};
use glap_cluster::{DataCenter, DcView, PmId, Resources, VmId};
use glap_cyclon::{CyclonNode, CyclonOverlay, RoundIo};
use glap_dcsim::{stream_rng, ConsolidationPolicy, NetworkModel, RoundCtx, SimRng, Stream};
use glap_qlearn::{PmState, QTablePair, VmAction};
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
use glap_telemetry::{AbortReason, EventKind, Tracer};
use rand::seq::SliceRandom;
use rand::Rng;

/// Modelled size of an exchange-opening request: the initiator ships its
/// load vector (3 × f64 utilization) plus id and round tag.
const EXCHANGE_REQ_BYTES: u64 = 32;
/// Modelled size of the exchange-opening reply: the partner's load vector
/// and its decision bit.
const EXCHANGE_REPLY_BYTES: u64 = 32;
/// Modelled size of a per-VM transfer handshake request: VM id plus its
/// current and near-future demand vectors.
const HANDSHAKE_REQ_BYTES: u64 = 52;
/// Modelled size of the handshake acknowledgement.
const HANDSHAKE_REPLY_BYTES: u64 = 4;

/// Where a PM finds its Q-tables.
#[derive(Debug, Clone)]
pub enum TableStore {
    /// All PMs share one unified table — the normal post-convergence mode.
    Shared(Box<QTablePair>),
    /// Each PM uses its own table (the "no aggregation" ablation).
    PerPm(Vec<QTablePair>),
}

impl TableStore {
    /// The table PM `pm` consults.
    #[inline]
    pub fn for_pm(&self, pm: PmId) -> &QTablePair {
        match self {
            TableStore::Shared(t) => t,
            TableStore::PerPm(v) => &v[pm.index()],
        }
    }
}

/// Why an eviction loop stopped (exposed for tests and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The loop's goal was reached (no longer overloaded / PM empty).
    GoalReached,
    /// `π_out` had no trained action among the available VMs.
    NoAction,
    /// `π_in` vetoed the migration (`φ_in < 0`).
    InVeto,
    /// The target lacked capacity for the VM's current demand.
    NoCapacity,
    /// The transfer handshake failed: the target crashed or the
    /// request/reply was lost on the management network.
    Unreachable,
}

/// When and how the learning component re-runs during live operation
/// (§IV-B's "predefined policy"). A trigger opens a *learning window*:
/// for `learning_window` rounds every eligible PM trains on that round's
/// live profiles (fresh demand observations each round, so the learner
/// sees real variance, exactly like the initial training), then the
/// aggregation gossip unifies the new tables and they are merged into the
/// consolidation component's knowledge — "the consolidation component can
/// be configured to either continue using the previous Q-values or pause
/// for a while and resume by using new Q-values".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrainConfig {
    /// Re-train once this many VM arrival/departure events accumulated
    /// since the last training.
    pub churn_threshold: usize,
    /// Also re-train on a fixed round interval, if set.
    pub interval: Option<u64>,
    /// Length of the online learning window, in rounds.
    pub learning_window: usize,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            churn_threshold: 50,
            interval: None,
            learning_window: 30,
        }
    }
}

/// In-flight online learning state (one re-training window).
#[derive(Debug, Clone)]
struct OnlineLearning {
    tables: Vec<QTablePair>,
    rounds_left: usize,
}

/// GLAP's consolidation policy, pluggable into the cycle-driven engine.
#[derive(Debug, Clone)]
pub struct GlapPolicy {
    cfg: GlapConfig,
    store: TableStore,
    overlay: CyclonOverlay,
    /// Ablation: accept every capacity-feasible VM (disables the learned
    /// admission control).
    pub disable_in_veto: bool,
    /// Ablation: use current-demand states everywhere (disables the
    /// average-demand piggyback signal).
    pub current_state_only: bool,
    /// Running count of vetoed migrations (diagnostics).
    pub vetoes: u64,
    /// Optional learning re-trigger policy.
    pub retrain: Option<RetrainConfig>,
    /// Churn events since the last (re-)training.
    churn_since_training: usize,
    /// Rounds since the last (re-)training.
    rounds_since_training: u64,
    /// How many times the learning component re-ran (diagnostics).
    pub retrainings: u64,
    /// An open learning window, if any.
    online: Option<OnlineLearning>,
    /// Extension (paper future work): topology awareness. When the data
    /// center has a rack topology, racks are ranked (lowest index first)
    /// and consolidation flows *down* the ranking from the first round:
    /// gossip partners are preferred in lower-ranked racks and the PM in
    /// the higher-ranked rack acts as sender. Survivor PMs therefore
    /// concentrate in a prefix of the racks and the remaining racks —
    /// and their ToR switches — power down entirely.
    pub rack_aware: bool,
    /// Cached per-rack active-PM counts, refreshed each round.
    rack_occupancy: Vec<usize>,
    /// Which PMs this policy currently believes crashed (management
    /// network down). Only maintained under a faulty network model.
    crashed: Vec<bool>,
}

impl GlapPolicy {
    /// Builds the policy from a table store and configuration.
    pub fn new(cfg: GlapConfig, store: TableStore) -> Self {
        let overlay = CyclonOverlay::new(0, cfg.cyclon_cache, cfg.cyclon_shuffle);
        GlapPolicy {
            cfg,
            store,
            overlay,
            disable_in_veto: false,
            current_state_only: false,
            vetoes: 0,
            retrain: None,
            churn_since_training: 0,
            rounds_since_training: 0,
            retrainings: 0,
            online: None,
            rack_aware: false,
            rack_occupancy: Vec::new(),
            crashed: Vec::new(),
        }
    }

    /// Builds the usual shared-table policy.
    pub fn with_shared_table(cfg: GlapConfig, table: QTablePair) -> Self {
        Self::new(cfg, TableStore::Shared(Box::new(table)))
    }

    /// The state a PM presents: from average demands (the paper's scheme)
    /// or from current demands under the ablation.
    fn pm_state(&self, dc: &DataCenter, pm: PmId) -> PmState {
        let u = if self.current_state_only {
            dc.pm(pm).utilization()
        } else {
            dc.pm(pm).avg_utilization()
        };
        PmState::from_utilization(u)
    }

    /// The action label of a VM: from its average demand (or current under
    /// the ablation).
    fn vm_action(&self, dc: &DataCenter, vm: VmId) -> VmAction {
        let d = if self.current_state_only {
            dc.vm(vm).current
        } else {
            dc.vm(vm).avg.value()
        };
        VmAction::from_demand(d)
    }

    /// One `MIGRATE()` attempt from `src` to `dst`. Returns the migrated VM
    /// or the reason nothing moved.
    fn try_migrate(
        &mut self,
        dc: &mut DataCenter,
        net: &mut NetworkModel,
        src: PmId,
        dst: PmId,
        tracer: &Tracer,
    ) -> Result<VmId, StopReason> {
        let s_src = self.pm_state(dc, src);
        let tables = self.store.for_pm(src);

        // findVM(s_p): best action among available VMs; among the VMs
        // matching it, least migration cost (memory footprint).
        let vms = dc.pm(src).vms();
        let best = tables
            .pi_out(s_src, vms.iter().map(|&vm| self.vm_action(dc, vm)))
            .map(|(a, _)| a);
        let Some(action) = best else {
            tracer.emit(EventKind::MigrationAborted {
                from: src.0,
                to: dst.0,
                reason: AbortReason::NoAction,
            });
            return Err(StopReason::NoAction);
        };
        let vm = vms
            .iter()
            .copied()
            .filter(|&vm| self.vm_action(dc, vm) == action)
            .min_by(|&a, &b| {
                dc.vm(a)
                    .mem_demand_mb()
                    .partial_cmp(&dc.vm(b).mem_demand_mb())
                    .expect("finite memory demands")
            })
            .expect("an available VM matches the chosen action");
        tracer.emit(EventKind::MigrationProposed {
            vm: vm.0,
            from: src.0,
            to: dst.0,
        });

        // π_in on behalf of the target.
        if !self.disable_in_veto {
            let s_dst = self.pm_state(dc, dst);
            if !self.store.for_pm(src).pi_in(s_dst, action) {
                self.vetoes += 1;
                tracer.emit(EventKind::MigrationVetoed {
                    vm: vm.0,
                    from: src.0,
                    to: dst.0,
                });
                return Err(StopReason::InVeto);
            }
        }

        // Capacity check on current demands.
        let needed = dc.pm(dst).demand() + dc.vm(vm).current;
        if !needed.fits_within(Resources::FULL) {
            tracer.emit(EventKind::MigrationAborted {
                from: src.0,
                to: dst.0,
                reason: AbortReason::NoCapacity,
            });
            return Err(StopReason::NoCapacity);
        }

        // Per-VM transfer handshake: the target must acknowledge before
        // the state copy starts. If it crashed since the exchange opened
        // (or the handshake is lost), the transfer — and the surrounding
        // eviction loop — aborts cleanly, leaving the VM on `src`.
        if !net.is_up(dst.0)
            || !net
                .request_payload(src.0, dst.0, HANDSHAKE_REQ_BYTES, HANDSHAKE_REPLY_BYTES)
                .is_ok()
        {
            tracer.emit(EventKind::MigrationAborted {
                from: src.0,
                to: dst.0,
                reason: AbortReason::Unreachable,
            });
            return Err(StopReason::Unreachable);
        }

        dc.migrate(vm, dst)
            .expect("migration preconditions verified");
        Ok(vm)
    }

    /// `UPDATESTATE()` for an initiator/partner pair: overload relief
    /// first, otherwise the less-utilized side empties itself toward
    /// switch-off.
    fn exchange(
        &mut self,
        dc: &mut DataCenter,
        net: &mut NetworkModel,
        p: PmId,
        q: PmId,
        tracer: &Tracer,
    ) {
        // Overload relief: "call MIGRATE() as long as p is overloaded".
        for (over, other) in [(p, q), (q, p)] {
            while dc.pm(over).is_overloaded() {
                if self.try_migrate(dc, net, over, other, tracer).is_err() {
                    break;
                }
            }
        }
        if dc.pm(p).is_overloaded() || dc.pm(q).is_overloaded() {
            return;
        }

        // Consolidation: sender = arg min of total current utilization.
        let (mut sender, mut receiver) = if dc.pm(p).demand().total() <= dc.pm(q).demand().total() {
            (p, q)
        } else {
            (q, p)
        };
        // Rack awareness: consolidation flows toward lower-ranked racks,
        // so the PM in the higher-ranked rack sends regardless of which
        // of the two is individually lighter.
        if self.rack_aware {
            if let Some(topo) = dc.config().topology {
                if topo.rack_of(sender) < topo.rack_of(receiver) {
                    std::mem::swap(&mut sender, &mut receiver);
                }
            }
        }
        // "call MIGRATE() as long as [we can] switch off p".
        while !dc.pm(sender).is_empty() {
            if self.try_migrate(dc, net, sender, receiver, tracer).is_err() {
                break;
            }
        }
        if dc.sleep_if_empty(sender) {
            self.overlay.set_dead(sender.0);
        }
    }

    /// Speculatively plans the full exchange between `p` and `q` against a
    /// frozen [`DcView`], replicating [`GlapPolicy::exchange`] decision
    /// for decision. Pure and `&self`, so the sweep can fan plans out
    /// over a worker pool; [`GlapPolicy::replay_plan`] applies the result
    /// when both endpoints are still in their frozen state at commit
    /// time. Only valid on the sharded (ideal-network, non-rack-aware)
    /// path: handshakes are assumed delivered and rack sender-flipping is
    /// not modelled.
    fn plan_exchange(&self, view: DcView<'_>, p: PmId, q: PmId) -> Vec<PlanOp> {
        let mut ops = Vec::new();
        let mut side_p = SideSim::capture(view, p);
        let mut side_q = SideSim::capture(view, q);
        // Overload relief: "call MIGRATE() as long as p is overloaded".
        for p_first in [true, false] {
            loop {
                let (over, other) = if p_first {
                    (&mut side_p, &mut side_q)
                } else {
                    (&mut side_q, &mut side_p)
                };
                if !over.is_overloaded() || !self.plan_try_migrate(view, over, other, &mut ops) {
                    break;
                }
            }
        }
        if side_p.is_overloaded() || side_q.is_overloaded() {
            return ops;
        }
        // Consolidation: sender = arg min of total current utilization
        // (`p` wins ties, exactly like the live exchange).
        let (sender, receiver) = if side_p.current.total() <= side_q.current.total() {
            (&mut side_p, &mut side_q)
        } else {
            (&mut side_q, &mut side_p)
        };
        while !sender.vms.is_empty() {
            if !self.plan_try_migrate(view, sender, receiver, &mut ops) {
                break;
            }
        }
        if sender.vms.is_empty() {
            ops.push(PlanOp::Sleep { pm: sender.id });
        }
        ops
    }

    /// One planned `MIGRATE()` attempt on the side replicas — the
    /// decision sequence of [`GlapPolicy::try_migrate`] with every event
    /// and state change recorded as a [`PlanOp`]. Returns whether a VM
    /// moved (the loop-continuation condition of the live code).
    fn plan_try_migrate(
        &self,
        view: DcView<'_>,
        src: &mut SideSim,
        dst: &mut SideSim,
        ops: &mut Vec<PlanOp>,
    ) -> bool {
        let s_src = self.side_state(src);
        let tables = self.store.for_pm(src.id);
        let best = tables
            .pi_out(s_src, src.vms.iter().map(|&vm| self.vm_action_in(view, vm)))
            .map(|(a, _)| a);
        let Some(action) = best else {
            ops.push(PlanOp::Aborted {
                from: src.id.0,
                to: dst.id.0,
                reason: AbortReason::NoAction,
            });
            return false;
        };
        let vm = src
            .vms
            .iter()
            .copied()
            .filter(|&vm| self.vm_action_in(view, vm) == action)
            .min_by(|&a, &b| {
                view.vm(a)
                    .mem_demand_mb()
                    .partial_cmp(&view.vm(b).mem_demand_mb())
                    .expect("finite memory demands")
            })
            .expect("an available VM matches the chosen action");
        ops.push(PlanOp::Proposed {
            vm: vm.0,
            from: src.id.0,
            to: dst.id.0,
        });
        if !self.disable_in_veto {
            let s_dst = self.side_state(dst);
            if !self.store.for_pm(src.id).pi_in(s_dst, action) {
                ops.push(PlanOp::Vetoed {
                    vm: vm.0,
                    from: src.id.0,
                    to: dst.id.0,
                });
                return false;
            }
        }
        let needed = dst.current + view.vm(vm).current;
        if !needed.fits_within(Resources::FULL) {
            ops.push(PlanOp::Aborted {
                from: src.id.0,
                to: dst.id.0,
                reason: AbortReason::NoCapacity,
            });
            return false;
        }
        // Ideal management network: the per-VM handshake round trip is
        // always delivered (recorded so the commit accounts its bytes).
        ops.push(PlanOp::Handshake {
            from: src.id.0,
            to: dst.id.0,
        });
        let (current, avg) = (view.vm(vm).current, view.vm(vm).avg.value());
        src.detach(vm, current, avg);
        dst.attach(vm, current, avg);
        ops.push(PlanOp::Migrate { vm, to: dst.id });
        true
    }

    /// The state a side replica presents (mirrors
    /// [`GlapPolicy::pm_state`], including the ablation switch).
    fn side_state(&self, side: &SideSim) -> PmState {
        let u = if self.current_state_only {
            side.current.clamp(0.0, 1.0)
        } else {
            side.avg.clamp(0.0, 1.0)
        };
        PmState::from_utilization(u)
    }

    /// [`GlapPolicy::vm_action`] against a frozen view (VM demands are
    /// constant for the whole sweep — only `DataCenter::step` moves
    /// them).
    fn vm_action_in(&self, view: DcView<'_>, vm: VmId) -> VmAction {
        let d = if self.current_state_only {
            view.vm(vm).current
        } else {
            view.vm(vm).avg.value()
        };
        VmAction::from_demand(d)
    }

    /// Applies a speculative plan for real: events, veto accounting,
    /// handshake traffic, migrations and switch-offs, in the exact order
    /// the live exchange produces them. Returns whether data-center
    /// state changed (a migration or a sleep) — the commit sweep's
    /// "touched" condition for the pair's endpoints.
    fn replay_plan(
        &mut self,
        dc: &mut DataCenter,
        net: &mut NetworkModel,
        ops: &[PlanOp],
        tracer: &Tracer,
    ) -> bool {
        let mut changed = false;
        for &op in ops {
            match op {
                PlanOp::Proposed { vm, from, to } => {
                    tracer.emit(EventKind::MigrationProposed { vm, from, to });
                }
                PlanOp::Vetoed { vm, from, to } => {
                    self.vetoes += 1;
                    tracer.emit(EventKind::MigrationVetoed { vm, from, to });
                }
                PlanOp::Aborted { from, to, reason } => {
                    tracer.emit(EventKind::MigrationAborted { from, to, reason });
                }
                PlanOp::Handshake { from, to } => {
                    let _ =
                        net.request_payload(from, to, HANDSHAKE_REQ_BYTES, HANDSHAKE_REPLY_BYTES);
                }
                PlanOp::Migrate { vm, to } => {
                    dc.migrate(vm, to)
                        .expect("planned migration preconditions verified");
                    changed = true;
                }
                PlanOp::Sleep { pm } => {
                    if dc.sleep_if_empty(pm) {
                        self.overlay.set_dead(pm.0);
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// One recorded step of a speculative exchange plan: the exact sequence
/// of events, network calls and state changes the live exchange would
/// produce for a pair, replayable verbatim by the commit sweep.
#[derive(Debug, Clone, Copy)]
enum PlanOp {
    Proposed {
        vm: u32,
        from: u32,
        to: u32,
    },
    Vetoed {
        vm: u32,
        from: u32,
        to: u32,
    },
    Aborted {
        from: u32,
        to: u32,
        reason: AbortReason,
    },
    Handshake {
        from: u32,
        to: u32,
    },
    Migrate {
        vm: VmId,
        to: PmId,
    },
    Sleep {
        pm: PmId,
    },
}

/// Scratch replica of one PM's exchange-relevant state, used for
/// speculative planning. Mutations mirror the live store's arithmetic
/// *exactly* — `push`/`swap_remove` list order (π_out iteration order and
/// the min-by tie-breaks depend on it), `+=`/`-=` aggregate updates in
/// the same sequence, zero-on-empty — so a plan applied to untouched
/// endpoints reproduces the live exchange bit for bit.
struct SideSim {
    id: PmId,
    vms: Vec<VmId>,
    current: Resources,
    avg: Resources,
}

impl SideSim {
    fn capture(view: DcView<'_>, pm: PmId) -> Self {
        let h = view.pm(pm);
        SideSim {
            id: pm,
            vms: h.vms().to_vec(),
            current: h.demand(),
            avg: h.avg_demand(),
        }
    }

    fn attach(&mut self, vm: VmId, current: Resources, avg: Resources) {
        self.vms.push(vm);
        self.current += current;
        self.avg += avg;
    }

    fn detach(&mut self, vm: VmId, current: Resources, avg: Resources) {
        let pos = self
            .vms
            .iter()
            .position(|&v| v == vm)
            .expect("planned detach of non-hosted VM");
        self.vms.swap_remove(pos);
        self.current -= current;
        self.avg -= avg;
        if self.vms.is_empty() {
            self.current = Resources::ZERO;
            self.avg = Resources::ZERO;
        }
    }

    fn is_overloaded(&self) -> bool {
        self.current.any_reaches(Resources::FULL)
    }
}

impl ConsolidationPolicy for GlapPolicy {
    fn name(&self) -> &'static str {
        "glap"
    }

    fn init(&mut self, dc: &mut DataCenter, rng: &mut SimRng) {
        self.overlay =
            CyclonOverlay::new(dc.n_pms(), self.cfg.cyclon_cache, self.cfg.cyclon_shuffle);
        self.overlay.bootstrap_random(rng);
        self.crashed = vec![false; dc.n_pms()];
        for pm in dc.pms() {
            if !pm.is_active() {
                self.overlay.set_dead(pm.id().0);
            }
        }
    }

    fn round(&mut self, ctx: &mut RoundCtx<'_>) {
        self.churn_since_training += ctx.churn_events;
        let dc = &mut *ctx.dc;
        let rng = &mut *ctx.rng;
        let net = &mut *ctx.net;
        let tracer = ctx.tracer;

        // Crash/recovery bookkeeping (faulty networks only; the ideal
        // path never crashes anyone, and this block must not touch the
        // policy RNG in that case). A crashed PM leaves the overlay like
        // a sleeping one — its VMs keep running, it just answers no
        // gossip. A recovered, still-active PM rejoins by bootstrapping
        // its view from a few random alive peers.
        if !net.is_ideal() {
            if self.crashed.len() != dc.n_pms() {
                self.crashed = vec![false; dc.n_pms()];
            }
            for i in 0..dc.n_pms() as u32 {
                let up = net.is_up(i);
                if !up && !self.crashed[i as usize] {
                    self.crashed[i as usize] = true;
                    self.overlay.set_dead(i);
                } else if up && self.crashed[i as usize] {
                    self.crashed[i as usize] = false;
                    if dc.pm(PmId(i)).is_active() {
                        self.overlay.set_alive(i);
                        let mut pool: Vec<u32> = (0..dc.n_pms() as u32)
                            .filter(|&j| j != i && self.overlay.is_alive(j) && net.is_up(j))
                            .collect();
                        pool.shuffle(rng);
                        pool.truncate(self.cfg.cyclon_cache);
                        self.overlay.node_mut(i).bootstrap(pool);
                    }
                }
            }
        }

        // Learning re-trigger (§IV-B): by churn volume or fixed interval.
        if let Some(rt) = self.retrain {
            self.rounds_since_training += 1;
            if self.online.is_none() {
                let by_churn = self.churn_since_training >= rt.churn_threshold;
                let by_time = rt
                    .interval
                    .is_some_and(|iv| self.rounds_since_training >= iv);
                if by_churn || by_time {
                    self.online = Some(OnlineLearning {
                        tables: (0..dc.n_pms())
                            .map(|_| QTablePair::new(self.cfg.qparams))
                            .collect(),
                        rounds_left: rt.learning_window.max(1),
                    });
                }
            }
        }

        // Cyclon runs continuously underneath (Figure 2), every shuffle a
        // request/reply over the message bus. A non-response (drop,
        // timeout, crashed target) leaves the target's descriptor evicted
        // — Cyclon's own churn rule, at no extra cost.
        self.overlay.run_round(
            rng,
            RoundIo::full(&mut |a, b| net.request(a, b).is_ok(), tracer),
        );

        // One round of the open learning window, if any: every eligible
        // PM trains on this round's live profiles, so the learner sees
        // the same demand variance the initial training did.
        if let Some(mut online) = self.online.take() {
            for i in 0..dc.n_pms() {
                let pm = PmId(i as u32);
                if !net.is_up(i as u32) {
                    continue; // crashed PMs train nothing this round
                }
                if !is_eligible(dc, pm, &self.cfg) {
                    continue;
                }
                let neighbor = self.overlay.random_alive_peer(i as u32, rng).map(PmId);
                let base = gather_profiles(dc, pm, neighbor, 1);
                let dup = required_duplication(&base, self.cfg.profile_duplication);
                let profiles = duplicate_profiles(base, dup);
                local_train(
                    &mut online.tables[i],
                    &profiles,
                    self.cfg.learning_iterations,
                    rng,
                );
            }
            online.rounds_left -= 1;
            if online.rounds_left == 0 {
                // Aggregation phase, then merge the unified result into
                // the consolidation component's knowledge.
                for _ in 0..self.cfg.aggregation_rounds {
                    self.overlay.run_round(
                        rng,
                        RoundIo::full(&mut |a, b| net.request(a, b).is_ok(), tracer),
                    );
                    if net.is_ideal() {
                        aggregation_round_sharded(
                            &mut online.tables,
                            &mut self.overlay,
                            rng,
                            None,
                            AggIo::full(net, tracer),
                        );
                    } else {
                        aggregation_round(
                            &mut online.tables,
                            &mut self.overlay,
                            rng,
                            AggIo::full(net, tracer),
                        );
                    }
                }
                let mut table = crate::trainer::unified_table(&online.tables);
                if let TableStore::Shared(old) = &self.store {
                    table.merge(old);
                }
                self.store = TableStore::Shared(Box::new(table));
                self.churn_since_training = 0;
                self.rounds_since_training = 0;
                self.retrainings += 1;
            } else {
                self.online = Some(online);
            }
        }

        if self.rack_aware {
            if let Some(topo) = dc.config().topology {
                self.rack_occupancy = topo.rack_occupancy(dc);
            }
        }

        let mut order: Vec<PmId> = dc.active_pm_ids().collect();
        order.shuffle(rng);

        // Sharded sweep: over an ideal network, without the rack
        // extension, the sweep splits into (1) parallel partner
        // selection on per-PM RNG streams, (2) parallel speculative
        // exchange planning against the frozen pre-sweep state, and
        // (3) a serial commit in exchange order that replays a pair's
        // plan verbatim when both endpoints are still in their frozen
        // state and falls back to the live exchange (which consumes no
        // randomness) otherwise. Results, events and counters are
        // identical at any thread count; like the sharded aggregation
        // round, the per-PM selection streams are this path's
        // deliberate re-seed relative to the old shared-RNG sweep.
        // Fault randomness and rack-aware draws are inherently
        // sequential, so those configurations keep the serial loop.
        if net.is_ideal() && !self.rack_aware {
            let sweep_seed: u64 = rng.gen();
            let n = dc.n_pms();
            // (1) Partner selection on disjoint overlay slots.
            let mut wanted = vec![false; n];
            for &p in &order {
                wanted[p.index()] = true;
            }
            let mut picked = vec![u32::MAX; n];
            {
                let (nodes, alive) = self.overlay.split_mut();
                struct Select<'a> {
                    p: u32,
                    node: &'a mut CyclonNode,
                    picked: u32,
                }
                let mut slots: Vec<Select<'_>> = nodes
                    .iter_mut()
                    .enumerate()
                    .filter(|&(i, _)| wanted[i])
                    .map(|(i, node)| Select {
                        p: i as u32,
                        node,
                        picked: u32::MAX,
                    })
                    .collect();
                glap_par::parallel_for_each(&mut slots, None, |s| {
                    let mut prng = stream_rng(sweep_seed, Stream::PolicyPm(s.p));
                    if let Some(q) = CyclonOverlay::random_alive_peer_in(s.node, alive, &mut prng) {
                        if q != s.p {
                            s.picked = q;
                        }
                    }
                });
                for s in &slots {
                    picked[s.p as usize] = s.picked;
                }
            }
            let pairs: Vec<(PmId, PmId)> = order
                .iter()
                .filter(|p| picked[p.index()] != u32::MAX)
                .map(|&p| (p, PmId(picked[p.index()])))
                .collect();
            // (2) Speculative planning against the frozen view.
            let view = dc.view();
            let this = &*self;
            let plans: Vec<Vec<PlanOp>> = glap_par::parallel_map(pairs.clone(), None, |&(p, q)| {
                this.plan_exchange(view, p, q)
            });
            // (3) Serial commit in exchange order.
            let mut touched = vec![false; n];
            for (k, &(p, q)) in pairs.iter().enumerate() {
                if !dc.pm(p).is_active() {
                    continue; // went to sleep earlier this round
                }
                if !dc.pm(q).is_active() {
                    // Stale view entry (asleep): drop and skip.
                    self.overlay.node_mut(p.0).remove(q.0);
                    continue;
                }
                // Exchange-opening round trip (always delivered here).
                let _ = net.request_payload(p.0, q.0, EXCHANGE_REQ_BYTES, EXCHANGE_REPLY_BYTES);
                tracer.emit(EventKind::ExchangeOpened { p: p.0, q: q.0 });
                let changed = if !touched[p.index()] && !touched[q.index()] {
                    self.replay_plan(dc, net, &plans[k], tracer)
                } else {
                    // An earlier exchange moved one endpoint off its
                    // frozen state: run the pair live (the exchange
                    // logic draws no randomness, so this changes no
                    // later draw).
                    let migrations_before = dc.total_migrations();
                    self.exchange(dc, net, p, q, tracer);
                    dc.total_migrations() != migrations_before
                        || !dc.pm(p).is_active()
                        || !dc.pm(q).is_active()
                };
                if changed {
                    touched[p.index()] = true;
                    touched[q.index()] = true;
                }
            }
            return;
        }

        for p in order {
            if !dc.pm(p).is_active() {
                continue; // went to sleep earlier this round
            }
            if !net.is_up(p.0) {
                continue; // crashed PMs initiate nothing
            }
            // Peer selection: rack-aware GLAP gossips, half the time,
            // with the alive neighbour in the lowest-ranked rack (random
            // among ties) so VMs flow down the rack ranking — and
            // otherwise uniformly, so ordinary local consolidation keeps
            // happening everywhere.
            let q = if self.rack_aware && rng.gen_bool(0.5) {
                dc.config()
                    .topology
                    .and_then(|topo| {
                        let alive: Vec<u32> = self
                            .overlay
                            .node(p.0)
                            .neighbors()
                            .filter(|&nb| dc.pm(PmId(nb)).is_active())
                            .collect();
                        let best_rack = alive.iter().map(|&nb| topo.rack_of(PmId(nb))).min()?;
                        let candidates: Vec<u32> = alive
                            .into_iter()
                            .filter(|&nb| topo.rack_of(PmId(nb)) == best_rack)
                            .collect();
                        candidates.choose(rng).copied()
                    })
                    .or_else(|| self.overlay.random_alive_peer(p.0, rng))
            } else {
                self.overlay.random_alive_peer(p.0, rng)
            };
            let Some(q) = q else { continue };
            let q = PmId(q);
            if !dc.pm(q).is_active() || !net.is_up(q.0) {
                // Stale view entry (asleep or crashed): drop and skip.
                self.overlay.node_mut(p.0).remove(q.0);
                continue;
            }
            // Open the push–pull exchange with one request/reply; a lost
            // or timed-out opening skips the pairing this round.
            if !net
                .request_payload(p.0, q.0, EXCHANGE_REQ_BYTES, EXCHANGE_REPLY_BYTES)
                .is_ok()
            {
                continue;
            }
            tracer.emit(EventKind::ExchangeOpened { p: p.0, q: q.0 });
            self.exchange(dc, net, p, q, tracer);
        }
    }

    /// Serializes every piece of mutable policy state: the table store,
    /// the overlay views, ablation switches, re-training bookkeeping, an
    /// open learning window if any, and the crash/rack caches. `cfg` is
    /// *not* serialized — a resumed run reconstructs the policy from the
    /// scenario's configuration, and the overlay parameters are
    /// cross-checked during restore.
    fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.overlay.len());
        match &self.store {
            TableStore::Shared(t) => {
                w.put_u8(0);
                t.save(w);
            }
            TableStore::PerPm(tables) => {
                w.put_u8(1);
                w.put_usize(tables.len());
                for t in tables {
                    t.save(w);
                }
            }
        }
        self.overlay.save(w);
        w.put_bool(self.disable_in_veto);
        w.put_bool(self.current_state_only);
        w.put_u64(self.vetoes);
        match &self.retrain {
            None => w.put_bool(false),
            Some(rt) => {
                w.put_bool(true);
                w.put_usize(rt.churn_threshold);
                match rt.interval {
                    None => w.put_bool(false),
                    Some(iv) => {
                        w.put_bool(true);
                        w.put_u64(iv);
                    }
                }
                w.put_usize(rt.learning_window);
            }
        }
        w.put_usize(self.churn_since_training);
        w.put_u64(self.rounds_since_training);
        w.put_u64(self.retrainings);
        match &self.online {
            None => w.put_bool(false),
            Some(ol) => {
                w.put_bool(true);
                w.put_usize(ol.tables.len());
                for t in &ol.tables {
                    t.save(w);
                }
                w.put_usize(ol.rounds_left);
            }
        }
        w.put_bool(self.rack_aware);
        w.put_usize(self.rack_occupancy.len());
        for &c in &self.rack_occupancy {
            w.put_usize(c);
        }
        w.put_bool_slice(&self.crashed);
    }

    /// Restores into a freshly constructed policy (same `GlapConfig`).
    /// Replaces [`ConsolidationPolicy::init`]: the overlay is rebuilt at
    /// the checkpointed size and then overwritten with the saved views.
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_usize()?;
        let store = match r.get_u8()? {
            0 => {
                let mut t = QTablePair::default();
                t.restore(r)?;
                TableStore::Shared(Box::new(t))
            }
            1 => {
                let k = r.get_usize()?;
                let mut tables = Vec::with_capacity(k);
                for _ in 0..k {
                    let mut t = QTablePair::default();
                    t.restore(r)?;
                    tables.push(t);
                }
                TableStore::PerPm(tables)
            }
            tag => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown table-store tag {tag}"
                )))
            }
        };
        let mut overlay = CyclonOverlay::new(n, self.cfg.cyclon_cache, self.cfg.cyclon_shuffle);
        overlay.restore(r)?;
        let disable_in_veto = r.get_bool()?;
        let current_state_only = r.get_bool()?;
        let vetoes = r.get_u64()?;
        let retrain = if r.get_bool()? {
            let churn_threshold = r.get_usize()?;
            let interval = if r.get_bool()? {
                Some(r.get_u64()?)
            } else {
                None
            };
            let learning_window = r.get_usize()?;
            Some(RetrainConfig {
                churn_threshold,
                interval,
                learning_window,
            })
        } else {
            None
        };
        let churn_since_training = r.get_usize()?;
        let rounds_since_training = r.get_u64()?;
        let retrainings = r.get_u64()?;
        let online = if r.get_bool()? {
            let k = r.get_usize()?;
            let mut tables = Vec::with_capacity(k);
            for _ in 0..k {
                let mut t = QTablePair::default();
                t.restore(r)?;
                tables.push(t);
            }
            let rounds_left = r.get_usize()?;
            Some(OnlineLearning {
                tables,
                rounds_left,
            })
        } else {
            None
        };
        let rack_aware = r.get_bool()?;
        let k = r.get_usize()?;
        let mut rack_occupancy = Vec::with_capacity(k);
        for _ in 0..k {
            rack_occupancy.push(r.get_usize()?);
        }
        let crashed = r.get_bool_slice()?;
        if crashed.len() != n {
            return Err(SnapshotError::Corrupt(format!(
                "crash map covers {} PMs, overlay has {n}",
                crashed.len()
            )));
        }
        self.store = store;
        self.overlay = overlay;
        self.disable_in_veto = disable_in_veto;
        self.current_state_only = current_state_only;
        self.vetoes = vetoes;
        self.retrain = retrain;
        self.churn_since_training = churn_since_training;
        self.rounds_since_training = rounds_since_training;
        self.retrainings = retrainings;
        self.online = online;
        self.rack_aware = rack_aware;
        self.rack_occupancy = rack_occupancy;
        self.crashed = crashed;
        Ok(())
    }
}

/// Builds a fully random dummy-trained table for tests/examples that need
/// *some* plausible knowledge without running the trainer: every
/// (state, action) pair gets out-values preferring big evictions and
/// in-values that are negative whenever the combined load would overload.
pub fn synthetic_table(rng: &mut impl Rng) -> QTablePair {
    let mut q = QTablePair::new(Default::default());
    for s in PmState::all() {
        for a in VmAction::all() {
            let s_u = (s.cpu.representative() + s.mem.representative()) / 2.0;
            let a_u = (a.cpu.representative() + a.mem.representative()) / 2.0;
            // Evicting bigger VMs from fuller PMs is better.
            q.out.set(s, a, 100.0 * a_u + 10.0 * s_u + rng.gen::<f64>());
            // Accepting overflows is bad.
            let combined_cpu = s.cpu.representative() + a.cpu.representative();
            let combined_mem = s.mem.representative() + a.mem.representative();
            let v = if combined_cpu >= 1.0 || combined_mem >= 1.0 {
                -500.0
            } else {
                50.0 * (combined_cpu + combined_mem) + rng.gen::<f64>()
            };
            q.r#in.set(s, a, v);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, VmSpec};
    use glap_dcsim::{run_simulation, stream_rng, Stream};

    fn setup(n_pms: usize, ratio: usize, seed: u64) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        let mut rng = stream_rng(seed, Stream::Placement);
        dc.random_placement(&mut rng);
        dc
    }

    fn trained_policy(seed: u64) -> GlapPolicy {
        let mut rng = stream_rng(seed, Stream::Custom(99));
        GlapPolicy::with_shared_table(GlapConfig::default(), synthetic_table(&mut rng))
    }

    #[test]
    fn consolidation_reduces_active_pms_under_light_load() {
        let mut dc = setup(20, 2, 1);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.3);
        let mut policy = trained_policy(1);
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 30, 1);
        // 40 VMs at 30% of nominal ≈ 0.056 CPU each → a PM fits many.
        assert!(
            dc.active_pm_count() < 20,
            "no consolidation happened: {} PMs active",
            dc.active_pm_count()
        );
        dc.check_invariants().unwrap();
    }

    #[test]
    fn sleeping_pms_leave_overlay() {
        let mut dc = setup(12, 2, 3);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.2);
        let mut policy = trained_policy(3);
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 25, 3);
        for pm in dc.pms() {
            if !pm.is_active() {
                assert!(!policy.overlay.is_alive(pm.id().0));
            }
        }
    }

    #[test]
    fn in_veto_prevents_overload_migrations() {
        // Two PMs, one nearly full: the veto must stop cramming.
        let mut dc = setup(6, 4, 5);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.85);
        let mut policy = trained_policy(5);
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 20, 5);
        // High demand: consolidation must be cautious. Overloads can still
        // happen from load *growth*, but the veto count must be active.
        dc.check_invariants().unwrap();
        // The synthetic in-table rejects overload-bound transitions, so at
        // high demand some vetoes should have fired.
        assert!(policy.vetoes > 0, "no vetoes at high load");
    }

    #[test]
    fn ablation_without_veto_overloads_more() {
        let run = |disable_veto: bool| {
            let mut dc = setup(16, 4, 7);
            let mut trace = |vm: VmId, r: u64| {
                // Varying loads: average ~0.5, swings to ~0.9.
                let x = 0.5 + 0.4 * ((r as f64 / 5.0) + f64::from(vm.0)).sin();
                Resources::splat(x.clamp(0.0, 1.0))
            };
            let mut policy = trained_policy(7);
            policy.disable_in_veto = disable_veto;
            let mut overloads = 0usize;
            struct Counter<'a>(&'a mut usize);
            impl glap_dcsim::Observer for Counter<'_> {
                fn on_round_end(&mut self, _r: u64, dc: &mut DataCenter) {
                    *self.0 += dc.overloaded_pm_count();
                }
            }
            let mut obs = Counter(&mut overloads);
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [&mut obs], 40, 7);
            overloads
        };
        let with_veto = run(false);
        let without_veto = run(true);
        assert!(
            without_veto >= with_veto,
            "veto should not increase overloads: with {with_veto}, without {without_veto}"
        );
    }

    #[test]
    fn overloaded_pm_attempts_relief() {
        let mut dc = setup(4, 8, 9);
        // Saturate everything, then drop: overloaded PMs must evict.
        let mut trace = |_: VmId, r: u64| {
            if r < 2 {
                Resources::splat(1.0)
            } else {
                Resources::splat(0.2)
            }
        };
        let mut policy = trained_policy(9);
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, 9);
        dc.check_invariants().unwrap();
        // After load drops, overloads should clear.
        assert_eq!(dc.overloaded_pm_count(), 0);
    }

    #[test]
    fn untrained_tables_never_migrate() {
        let mut dc = setup(10, 2, 11);
        let before: Vec<_> = dc.vms().map(|v| v.host).collect();
        let mut trace = |_: VmId, _: u64| Resources::splat(0.3);
        let mut policy =
            GlapPolicy::with_shared_table(GlapConfig::default(), QTablePair::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, 11);
        let after: Vec<_> = dc.vms().map(|v| v.host).collect();
        assert_eq!(before, after, "π_out with no knowledge must do nothing");
    }

    #[test]
    fn per_pm_store_routes_to_own_table() {
        let mut rng = stream_rng(13, Stream::Custom(1));
        let tables = vec![QTablePair::default(), synthetic_table(&mut rng)];
        let store = TableStore::PerPm(tables);
        assert_eq!(store.for_pm(PmId(0)).trained_pairs(), 0);
        assert!(store.for_pm(PmId(1)).trained_pairs() > 0);
    }

    /// A table that proposes every eviction and accepts every admission:
    /// all out-values and in-values visited and positive.
    fn accept_all_table() -> QTablePair {
        let mut q = QTablePair::new(Default::default());
        for s in PmState::all() {
            for a in VmAction::all() {
                q.out.set(s, a, 1.0);
                q.r#in.set(s, a, 1.0);
            }
        }
        q
    }

    #[test]
    fn scripted_two_pm_exchange_emits_exact_event_sequence() {
        use glap_telemetry::Tracer;

        // PM0 holds the lighter VM, PM1 the heavier: consolidation picks
        // PM0 as sender, moves its only VM over, and switches PM0 off.
        let mut dc = DataCenter::new(DataCenterConfig::paper(2));
        let vm0 = dc.add_vm(VmSpec::EC2_MICRO);
        let vm1 = dc.add_vm(VmSpec::EC2_MICRO);
        dc.place(vm0, PmId(0));
        dc.place(vm1, PmId(1));
        let mut trace = |vm: VmId, _: u64| {
            if vm == VmId(0) {
                Resources::splat(0.2)
            } else {
                Resources::splat(0.4)
            }
        };
        dc.step(&mut trace);

        let (tracer, sink) = Tracer::memory();
        dc.set_tracer(tracer.clone());
        let mut net = NetworkModel::ideal(2);
        net.set_tracer(tracer.clone());
        let mut policy = GlapPolicy::with_shared_table(GlapConfig::default(), accept_all_table());
        policy.init(&mut dc, &mut stream_rng(1, Stream::Policy));
        policy.exchange(&mut dc, &mut net, PmId(0), PmId(1), &tracer);

        let events = sink.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::MigrationProposed {
                    vm: 0,
                    from: 0,
                    to: 1
                },
                // The per-VM transfer handshake is one request message.
                EventKind::MsgSent {
                    from: 0,
                    to: 1,
                    op: glap_telemetry::MsgOp::Request
                },
                EventKind::MigrationCommitted {
                    vm: 0,
                    from: 0,
                    to: 1
                },
                EventKind::PmSlept { pm: 0 },
            ]
        );
        // Sequence numbers are globally monotone across emitters.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(dc.vm(VmId(0)).host, Some(PmId(1)));
        assert!(!dc.pm(PmId(0)).is_active());
    }

    #[test]
    fn speculative_plan_replays_exactly_like_the_live_exchange() {
        use glap_telemetry::Tracer;
        // The sharded sweep stands on this contract: planning an exchange
        // against the frozen view and replaying the plan must reproduce
        // the live exchange exactly — same placements, same power states,
        // same veto count, same network stats, same event stream.
        for seed in 0..6u64 {
            let mut dc0 = setup(8, 3, seed);
            // Varied load: light VMs consolidate, heavy ones overload,
            // so the pairs below hit relief, vetoes and switch-offs.
            let mut trace = |vm: VmId, _: u64| Resources::splat(0.1 + 0.25 * ((vm.0 % 4) as f64));
            dc0.step(&mut trace);
            let mut policy0 = trained_policy(seed);
            policy0.init(&mut dc0, &mut stream_rng(seed, Stream::Policy));
            let kinds = |sink: &glap_telemetry::MemorySink| {
                sink.events()
                    .iter()
                    .map(|e| e.kind.clone())
                    .collect::<Vec<_>>()
            };
            for p in 0..8u32 {
                for q in 0..8u32 {
                    let (p, q) = (PmId(p), PmId(q));
                    if p == q || !dc0.pm(p).is_active() || !dc0.pm(q).is_active() {
                        continue;
                    }

                    // Live exchange.
                    let mut dc_a = dc0.clone();
                    let (tr_a, sink_a) = Tracer::memory();
                    dc_a.set_tracer(tr_a.clone());
                    let mut net_a = NetworkModel::ideal(8);
                    net_a.set_tracer(tr_a.clone());
                    let mut pol_a = policy0.clone();
                    pol_a.exchange(&mut dc_a, &mut net_a, p, q, &tr_a);

                    // Plan against the frozen view, then replay.
                    let mut dc_b = dc0.clone();
                    let (tr_b, sink_b) = Tracer::memory();
                    dc_b.set_tracer(tr_b.clone());
                    let mut net_b = NetworkModel::ideal(8);
                    net_b.set_tracer(tr_b.clone());
                    let mut pol_b = policy0.clone();
                    let plan = pol_b.plan_exchange(dc_b.view(), p, q);
                    let changed = pol_b.replay_plan(&mut dc_b, &mut net_b, &plan, &tr_b);

                    let ctx = format!("seed={seed} pair=({},{})", p.0, q.0);
                    assert_eq!(kinds(&sink_a), kinds(&sink_b), "{ctx}");
                    assert_eq!(pol_a.vetoes, pol_b.vetoes, "{ctx}");
                    assert_eq!(net_a.stats, net_b.stats, "{ctx}");
                    let mut state_changed = false;
                    for vm in 0..dc0.n_vms() {
                        let vm = VmId(vm as u32);
                        assert_eq!(dc_a.vm(vm).host, dc_b.vm(vm).host, "{ctx} {vm:?}");
                        state_changed |= dc_a.vm(vm).host != dc0.vm(vm).host;
                    }
                    for i in 0..dc0.n_pms() {
                        let id = PmId(i as u32);
                        assert_eq!(
                            dc_a.pm(id).is_active(),
                            dc_b.pm(id).is_active(),
                            "{ctx} pm{i}"
                        );
                        state_changed |= dc_a.pm(id).is_active() != dc0.pm(id).is_active();
                    }
                    assert_eq!(changed, state_changed, "{ctx} touched flag");
                    dc_b.check_invariants().unwrap();
                }
            }
        }
    }

    #[test]
    fn sharded_sweep_is_thread_count_invariant() {
        // The full policy round over an ideal network (which takes the
        // sharded sweep) must be byte-identical at any worker-pool width.
        let run = |threads: usize| {
            glap_par::set_default_threads(threads);
            let mut dc = setup(24, 3, 11);
            let mut trace = |vm: VmId, _: u64| Resources::splat(0.08 + 0.1 * ((vm.0 % 3) as f64));
            let mut policy = trained_policy(11);
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 20, 11);
            glap_par::set_default_threads(0);
            let placements: Vec<Option<u32>> = (0..dc.n_vms())
                .map(|v| dc.vm(VmId(v as u32)).host.map(|p| p.0))
                .collect();
            let active: Vec<bool> = (0..dc.n_pms())
                .map(|i| dc.pm(PmId(i as u32)).is_active())
                .collect();
            (placements, active, dc.total_migrations(), policy.vetoes)
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
        assert!(one.2 > 0, "no migrations in 20 rounds");
    }

    #[test]
    fn veto_emits_migration_vetoed_event() {
        use glap_telemetry::Tracer;

        // In-table rejects everything: the proposal must be vetoed.
        let mut table = accept_all_table();
        for s in PmState::all() {
            for a in VmAction::all() {
                table.r#in.set(s, a, -1.0);
            }
        }
        let mut dc = DataCenter::new(DataCenterConfig::paper(2));
        let vm0 = dc.add_vm(VmSpec::EC2_MICRO);
        let vm1 = dc.add_vm(VmSpec::EC2_MICRO);
        dc.place(vm0, PmId(0));
        dc.place(vm1, PmId(1));
        let mut trace = |_: VmId, _: u64| Resources::splat(0.3);
        dc.step(&mut trace);

        let (tracer, sink) = Tracer::memory();
        dc.set_tracer(tracer.clone());
        let mut net = NetworkModel::ideal(2);
        let mut policy = GlapPolicy::with_shared_table(GlapConfig::default(), table);
        policy.init(&mut dc, &mut stream_rng(2, Stream::Policy));
        let err = policy
            .try_migrate(&mut dc, &mut net, PmId(0), PmId(1), &tracer)
            .unwrap_err();
        assert_eq!(err, StopReason::InVeto);
        assert_eq!(policy.vetoes, 1);
        let kinds: Vec<EventKind> = sink.events().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::MigrationProposed {
                    vm: 0,
                    from: 0,
                    to: 1
                },
                EventKind::MigrationVetoed {
                    vm: 0,
                    from: 0,
                    to: 1
                },
            ]
        );
    }

    #[test]
    fn checkpointed_policy_resumes_byte_identically() {
        use glap_dcsim::{run_simulation_resumable, SimRng};
        use glap_profile::Profiler;

        let trace = |vm: VmId, r: u64| {
            Resources::splat((0.2 + 0.1 * ((vm.0 + r as u32) % 5) as f64).min(1.0))
        };
        // interval 8, window 3: a learning window is open at round 9, so
        // the snapshot exercises the in-flight OnlineLearning state too.
        let retrain = RetrainConfig {
            churn_threshold: 10_000,
            interval: Some(8),
            learning_window: 3,
        };
        let run_rounds =
            |policy: &mut GlapPolicy, dc: &mut DataCenter, rng: &mut SimRng, rounds, call_init| {
                let mut net = NetworkModel::ideal(dc.n_pms());
                let mut t = trace;
                run_simulation_resumable(
                    dc,
                    &mut t,
                    policy,
                    &mut [],
                    rounds,
                    &mut net,
                    &Tracer::off(),
                    &Profiler::off(),
                    rng,
                    call_init,
                    0,
                    &mut |_| Ok(()),
                )
                .unwrap();
            };

        // Uninterrupted reference: 20 rounds.
        let mut dc_a = setup(15, 3, 21);
        let mut pol_a = trained_policy(21);
        pol_a.retrain = Some(retrain);
        let mut rng_a = stream_rng(21, Stream::Policy);
        run_rounds(&mut pol_a, &mut dc_a, &mut rng_a, 20, true);

        // Interrupted at round 9 (learning window open), policy state
        // carried across the gap as bytes only.
        let mut dc_b = setup(15, 3, 21);
        let mut pol_b = trained_policy(21);
        pol_b.retrain = Some(retrain);
        let mut rng_b = stream_rng(21, Stream::Policy);
        run_rounds(&mut pol_b, &mut dc_b, &mut rng_b, 9, true);

        let mut w = Writer::new();
        pol_b.save_state(&mut w);
        let bytes = w.into_bytes();

        // Fresh policy with a *different* synthetic table: every piece of
        // state must come from the snapshot.
        let mut pol_c = trained_policy(999);
        pol_c
            .restore_state(&mut glap_snapshot::Reader::new(&bytes))
            .unwrap();
        assert!(pol_c.online.is_some(), "learning window survives");

        // Immediate re-save is byte-identical.
        let mut w2 = Writer::new();
        pol_c.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // Resume without init for the remaining 11 rounds.
        run_rounds(&mut pol_c, &mut dc_b, &mut rng_b, 11, false);
        assert_eq!(
            dc_a.vms().map(|v| v.host).collect::<Vec<_>>(),
            dc_b.vms().map(|v| v.host).collect::<Vec<_>>()
        );
        assert_eq!(dc_a.active_pm_count(), dc_b.active_pm_count());
        assert_eq!(pol_a.vetoes, pol_c.vetoes);
        assert_eq!(pol_a.retrainings, pol_c.retrainings);
    }

    #[test]
    fn restore_rejects_unknown_table_store_tag() {
        let mut w = Writer::new();
        w.put_usize(4);
        w.put_u8(7); // no such store
        let mut pol = trained_policy(1);
        assert!(matches!(
            pol.restore_state(&mut glap_snapshot::Reader::new(w.bytes())),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn policy_runs_are_deterministic() {
        let run = || {
            let mut dc = setup(15, 3, 17);
            let mut trace = |vm: VmId, r: u64| {
                Resources::splat((0.2 + 0.1 * ((vm.0 + r as u32) % 5) as f64).min(1.0))
            };
            let mut policy = trained_policy(17);
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 20, 17);
            (
                dc.active_pm_count(),
                dc.total_migrations(),
                dc.vms().map(|v| v.host).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
