//! GLAP configuration.

use glap_codec::CodecKind;
use glap_qlearn::QParams;
use serde::{Deserialize, Serialize};

/// All tunables of the GLAP protocol (learning, aggregation and
/// consolidation components).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlapConfig {
    /// Q-learning hyperparameters (Eq. 1).
    pub qparams: QParams,
    /// Only PMs whose CPU utilization is at or below this threshold run
    /// the learning phase locally, "to eliminate any impact on collocating
    /// VMs in highly loaded PMs" (§IV-B). The paper's experiments use PMs
    /// with at least 50% free CPU, i.e. a threshold of 0.5.
    pub learning_threshold: f64,
    /// Number of simulated sender/recipient migration steps (`k` in
    /// Algorithm 1) each eligible PM runs per learning round.
    pub learning_iterations: usize,
    /// Learning-phase rounds to run when training.
    pub learning_rounds: usize,
    /// Aggregation-phase gossip rounds to run after learning.
    pub aggregation_rounds: usize,
    /// Profile-list duplication factor in Algorithm 1 ("duplicate vms if
    /// required") so subset sums cover highly loaded states.
    pub profile_duplication: usize,
    /// Cyclon partial-view size.
    pub cyclon_cache: usize,
    /// Cyclon shuffle length.
    pub cyclon_shuffle: usize,
    /// Payload codec for aggregation-phase table exchanges. The default
    /// ([`CodecKind::Identity`]) keeps the legacy bit-exact wire behavior.
    pub codec: CodecKind,
}

impl Default for GlapConfig {
    fn default() -> Self {
        GlapConfig {
            qparams: QParams::default(),
            learning_threshold: 0.5,
            learning_iterations: 20,
            learning_rounds: 100,
            aggregation_rounds: 30,
            profile_duplication: 2,
            cyclon_cache: 8,
            cyclon_shuffle: 4,
            codec: CodecKind::default(),
        }
    }
}

impl GlapConfig {
    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.learning_threshold) {
            return Err(format!(
                "learning_threshold {} outside [0,1]",
                self.learning_threshold
            ));
        }
        if !(0.0..=1.0).contains(&self.qparams.alpha) || self.qparams.alpha == 0.0 {
            return Err(format!("alpha {} outside (0,1]", self.qparams.alpha));
        }
        if !(0.0..1.0).contains(&self.qparams.gamma) {
            return Err(format!("gamma {} outside [0,1)", self.qparams.gamma));
        }
        if self.learning_iterations == 0 {
            return Err("learning_iterations must be positive".into());
        }
        if self.profile_duplication == 0 {
            return Err("profile_duplication must be at least 1".into());
        }
        if self.cyclon_cache == 0 || self.cyclon_shuffle == 0 {
            return Err("cyclon parameters must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GlapConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_threshold_rejected() {
        let cfg = GlapConfig {
            learning_threshold: 1.5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn invalid_alpha_gamma_rejected() {
        let mut cfg = GlapConfig::default();
        cfg.qparams.alpha = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = GlapConfig::default();
        cfg.qparams.gamma = 1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_iterations_rejected() {
        let cfg = GlapConfig {
            learning_iterations: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}
