//! # glap — Gossip Learning Resource Allocation Protocol
//!
//! A full reproduction of **GLAP** (Khelghatdoust, Gramoli & Sun, IEEE
//! CLUSTER 2016): the first fully distributed, threshold-free dynamic VM
//! consolidation algorithm that accounts for time-varying VM demand.
//!
//! GLAP composes three per-PM components (Figure 2 of the paper):
//!
//! 1. **Cyclon** peer sampling ([`glap_cyclon`]) — a churn-tolerant random
//!    overlay;
//! 2. **Gossip learning** ([`learning`], [`aggregation`], [`trainer`]) — a
//!    two-phase protocol where PMs first *locally* train Q-tables by
//!    simulating migrations over VM demand profiles (Algorithm 1), then
//!    *unify* them via push–pull gossip merging (Algorithm 2), provably
//!    converging (§IV-C);
//! 3. **Gossip consolidation** ([`policy`]) — the migration protocol
//!    (Algorithm 3): overloaded PMs evict; otherwise the less-utilized
//!    partner empties itself toward switch-off, with every migration gated
//!    by the learned `φ_out` (what to move) and `φ_in` (what the target can
//!    safely absorb, now *and in the near future*).
//!
//! ```
//! use glap::prelude::*;
//! use glap_cluster::prelude::*;
//! use glap_dcsim::{run_simulation, stream_rng, Stream};
//!
//! // Build a small data center: 10 PMs, 20 VMs.
//! let mut dc = DataCenter::new(DataCenterConfig::paper(10));
//! for _ in 0..20 { dc.add_vm(VmSpec::EC2_MICRO); }
//! dc.random_placement(&mut stream_rng(1, Stream::Placement));
//!
//! // Train the two-phase gossip learner, then consolidate for a day.
//! let cfg = GlapConfig { learning_rounds: 20, aggregation_rounds: 10, ..Default::default() };
//! let mut trace = |vm: VmId, r: u64| Resources::splat(0.25 + 0.05 * ((vm.0 + r as u32) % 3) as f64);
//! let (tables, _report) = train(&mut dc, &mut trace, &cfg, 42, false);
//! let mut policy = GlapPolicy::with_shared_table(cfg, unified_table(&tables));
//! run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 50, 42);
//! assert!(dc.active_pm_count() <= 10);
//! ```

pub mod aggregation;
pub mod config;
pub mod learning;
pub mod policy;
pub mod trainer;

pub use aggregation::{
    aggregation_round, aggregation_round_net, mean_pairwise_similarity, merge_pair,
    AggregationRoundStats, AGGREGATION_MAX_ATTEMPTS,
};
pub use config::GlapConfig;
pub use learning::{
    duplicate_profiles, gather_profiles, gather_profiles_into, is_eligible, local_train,
    local_train_with, required_duplication,
};
pub use policy::{synthetic_table, GlapPolicy, RetrainConfig, StopReason, TableStore};
pub use trainer::{
    retrain_in_place, train, train_traced, train_traced_with_threads, train_unified, unified_table,
    TrainPhase, TrainReport,
};

/// Convenient glob import.
pub mod prelude {
    pub use crate::aggregation::{
        aggregation_round, aggregation_round_net, mean_pairwise_similarity,
    };
    pub use crate::config::GlapConfig;
    pub use crate::policy::{GlapPolicy, RetrainConfig, TableStore};
    pub use crate::trainer::{
        train, train_traced, train_unified, unified_table, TrainPhase, TrainReport,
    };
}
