//! # glap — Gossip Learning Resource Allocation Protocol
//!
//! A full reproduction of **GLAP** (Khelghatdoust, Gramoli & Sun, IEEE
//! CLUSTER 2016): the first fully distributed, threshold-free dynamic VM
//! consolidation algorithm that accounts for time-varying VM demand.
//!
//! GLAP composes three per-PM components (Figure 2 of the paper):
//!
//! 1. **Cyclon** peer sampling ([`glap_cyclon`]) — a churn-tolerant random
//!    overlay;
//! 2. **Gossip learning** ([`learning`], [`aggregation`], [`trainer`]) — a
//!    two-phase protocol where PMs first *locally* train Q-tables by
//!    simulating migrations over VM demand profiles (Algorithm 1), then
//!    *unify* them via push–pull gossip merging (Algorithm 2), provably
//!    converging (§IV-C);
//! 3. **Gossip consolidation** ([`policy`]) — the migration protocol
//!    (Algorithm 3): overloaded PMs evict; otherwise the less-utilized
//!    partner empties itself toward switch-off, with every migration gated
//!    by the learned `φ_out` (what to move) and `φ_in` (what the target can
//!    safely absorb, now *and in the near future*).
//!
//! ```
//! use glap::prelude::*;
//! use glap_cluster::prelude::*;
//!
//! // Build a small data center: 10 PMs, 20 VMs.
//! let mut dc = DataCenter::new(DataCenterConfig::paper(10));
//! for _ in 0..20 { dc.add_vm(VmSpec::EC2_MICRO); }
//! dc.random_placement(&mut stream_rng(1, Stream::Placement));
//!
//! // Train the two-phase gossip learner, then consolidate for a day.
//! let cfg = GlapConfig { learning_rounds: 20, aggregation_rounds: 10, ..Default::default() };
//! let mut trace = |vm: VmId, r: u64| Resources::splat(0.25 + 0.05 * ((vm.0 + r as u32) % 3) as f64);
//! let (tables, _report) = train(&mut dc, &mut trace, &cfg, 42, false);
//! let mut policy = GlapPolicy::with_shared_table(cfg, unified_table(&tables));
//! run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 50, 42);
//! assert!(dc.active_pm_count() <= 10);
//! ```

pub mod aggregation;
pub mod config;
pub mod learning;
pub mod policy;
pub mod trainer;

pub use aggregation::{
    aggregation_round, build_agg_plan, mean_pairwise_similarity, merge_pair, AggIo, AggPlan,
    AggregationRoundStats, AGGREGATION_MAX_ATTEMPTS,
};
pub use config::GlapConfig;
pub use learning::{
    duplicate_profiles, gather_profiles, gather_profiles_into, is_eligible, local_train,
    local_train_with, required_duplication,
};
pub use policy::{synthetic_table, GlapPolicy, RetrainConfig, StopReason, TableStore};
pub use trainer::{
    retrain_in_place, train, train_arena, train_instrumented, train_traced,
    train_traced_with_threads, train_two_pass_reference, train_unified, unified_table, TrainPhase,
    TrainReport,
};

// Workspace-level re-exports: the protocol stack a consumer of `glap`
// almost always needs next, reachable as `glap::cyclon::…` etc. instead
// of a four-crate dependency list.
pub use glap_codec as codec;
pub use glap_cyclon as cyclon;
pub use glap_dcsim as dcsim;
pub use glap_qlearn as qlearn;
pub use glap_snapshot as snapshot;
pub use glap_telemetry as telemetry;

/// Convenient glob import: the GLAP protocol surface plus the handful of
/// cross-crate types every experiment binary and integration test was
/// reaching through four crates for (`RoundCtx`, `QTablePair`, `Stream`,
/// `Checkpointable`, …). Cluster-model types are deliberately absent —
/// glob-import `glap_cluster::prelude` alongside without ambiguity.
pub mod prelude {
    pub use crate::aggregation::{
        aggregation_round, mean_pairwise_similarity, merge_pair, AggIo, AggregationRoundStats,
        AGGREGATION_MAX_ATTEMPTS,
    };
    pub use crate::config::GlapConfig;
    pub use crate::learning::{gather_profiles_into, is_eligible, local_train_with};
    pub use crate::policy::{GlapPolicy, RetrainConfig, StopReason, TableStore};
    pub use crate::trainer::{
        train, train_arena, train_instrumented, train_traced, train_traced_with_threads,
        train_unified, unified_table, TrainPhase, TrainReport,
    };
    pub use glap_codec::{AnyCodec, CodecKind, FleetCodecs, TableCodec};
    pub use glap_cyclon::{CyclonNode, CyclonOverlay, Descriptor, PendingShuffle, RoundIo};
    pub use glap_dcsim::{
        node_rng, restore_rng, run_simulation, run_simulation_resumable, run_simulation_traced,
        save_rng, splitmix64, stream_rng, ConsolidationPolicy, Delivery, FaultProfile,
        NetworkModel, RoundCtx, SimRng, Stream,
    };
    pub use glap_profile::Profiler;
    pub use glap_qlearn::{PmState, QParams, QTable, QTablePair, VmAction};
    pub use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
    pub use glap_telemetry::{EventKind, Phase, Tracer};
}
