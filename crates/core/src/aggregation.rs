//! The aggregation phase (Algorithm 2).
//!
//! After local training, PMs hold *different* Q-tables (and PMs that were
//! too loaded to train hold none). A push–pull gossip unifies them: each
//! round, every PM exchanges its `φ^io = φ^in ∪ φ^out` with one random
//! neighbour and both apply `UPDATE` — average the values of pairs present
//! on both sides, adopt the pairs present on only one. §IV-C proves the
//! per-pair value converges (to a normal distribution around the mean of
//! the contributions); Figure 5 measures convergence as cosine similarity.

use glap_codec::{subtag, CodedHeader, FleetCodecs};
use glap_cyclon::CyclonOverlay;
use glap_dcsim::{stream_rng, NetworkModel, Stream};
use glap_qlearn::QTablePair;
use glap_telemetry::{EventKind, Tracer};
use rand::seq::SliceRandom;
use rand::Rng;

/// Wire-size estimate of one trained `(state, action, value)` entry:
/// packed state + action byte plus an f64 value.
const ENTRY_BYTES: u64 = 10;

/// How often one node re-sends its table push within a round before
/// backing off to the next gossip round (the overlay refreshes views in
/// between, so the retry pool improves round over round).
pub const AGGREGATION_MAX_ATTEMPTS: usize = 3;

/// What happened during one net-aware aggregation round (diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AggregationRoundStats {
    /// Successful symmetric merges.
    pub merges: u64,
    /// Exchanges lost to message drops or timeouts (re-sent up to the
    /// attempt cap).
    pub dropped: u64,
    /// Partner picks that landed on a crashed PM (pruned and re-picked).
    pub skipped_down: u64,
}

/// Per-round context for [`aggregation_round`]: an optional fault-model
/// network and an optional event tracer. `AggIo::default()` is the
/// ideal, untraced round and costs only `Option` branches — no event is
/// built, no fault randomness is consumed.
#[derive(Default)]
pub struct AggIo<'a> {
    /// Fault model: when present, each push–pull exchange is a
    /// request/reply round trip that can be dropped, time out, or land
    /// on a crashed partner. `None` means every exchange succeeds.
    pub net: Option<&'a mut NetworkModel>,
    /// Event tracer: emits `merge_applied` per symmetric merge and
    /// `merge_retried` per failed attempt, and accounts the estimated
    /// gossip traffic under `agg.bytes` / `agg.merges`. Tracing reads no
    /// randomness — the merge outcome for any seed is identical with or
    /// without it.
    pub tracer: Option<&'a Tracer>,
    /// Payload codec state: when present, every exchange is encoded
    /// through the per-PM codecs (actual bytes on the wire replace the
    /// entry-count estimate, and `codec.*` counters are accounted).
    /// `None` — the default — keeps the legacy verbatim-merge path
    /// bit-identical. Callers pass codecs only for non-identity kinds:
    /// an identity `FleetCodecs` merges to identical tables but accounts
    /// dense payload bytes instead of the estimate.
    pub codec: Option<&'a mut FleetCodecs>,
}

impl<'a> AggIo<'a> {
    /// A round over a lossy network, untraced.
    pub fn net(net: &'a mut NetworkModel) -> Self {
        AggIo {
            net: Some(net),
            ..AggIo::default()
        }
    }

    /// An ideal-network round with an event tracer.
    pub fn traced(tracer: &'a Tracer) -> Self {
        AggIo {
            tracer: Some(tracer),
            ..AggIo::default()
        }
    }

    /// A lossy-network, traced round.
    pub fn full(net: &'a mut NetworkModel, tracer: &'a Tracer) -> Self {
        AggIo {
            net: Some(net),
            tracer: Some(tracer),
            ..AggIo::default()
        }
    }

    /// Routes every exchange through `codecs` (builder-style).
    pub fn with_codec(mut self, codecs: &'a mut FleetCodecs) -> Self {
        self.codec = Some(codecs);
        self
    }
}

/// Accounts `codec.*` counters for one coded payload body: bytes saved
/// versus the dense identity payload, full-table and stale-fallback
/// counts, and the running maximum declared quantization error (stored
/// as a monotone counter in units of 1e-9).
fn account_codec_payload(tracer: &Tracer, body: &[u8]) {
    let Ok(header) = CodedHeader::peek(body) else {
        return;
    };
    let identity = glap_codec::identity_payload_len() as u64;
    let wire = (body.len() + glap_codec::WIRE_OVERHEAD) as u64;
    tracer.add("codec.payloads", 1);
    tracer.add("codec.bytes_saved", identity.saturating_sub(wire));
    match header.subtag {
        subtag::FULL => tracer.add("codec.full_payloads", 1),
        subtag::STALE_FULL => tracer.add("codec.fallbacks", 1),
        _ => {}
    }
    if header.err_bound > 0.0 {
        let scaled = (header.err_bound * 1e9).ceil() as u64;
        let prev = tracer.counter_total("codec.q_err_max_1e9");
        if scaled > prev {
            tracer.add("codec.q_err_max_1e9", scaled - prev);
        }
    }
}

/// One synchronous aggregation gossip round over all alive PMs.
///
/// For each alive node (random activation order) a random alive peer is
/// drawn from its Cyclon view and the two run the symmetric `UPDATE` of
/// Algorithm 2, after which both hold the identical merged table.
///
/// With a network in the [`AggIo`] context, a node whose exchange fails
/// re-sends — re-picking its partner, since the original may be the
/// problem — up to [`AGGREGATION_MAX_ATTEMPTS`] times, then backs off
/// until the next aggregation round. Crashed partners are pruned from
/// the view exactly like dead ones (Cyclon's failed-contact rule);
/// crashed *initiators* sit the round out. Over an ideal network (or
/// with `net: None`) this draws the same RNG sequence and performs the
/// same merges as the no-net path — the byte-identity contract of the
/// fault layer.
pub fn aggregation_round<R: Rng>(
    tables: &mut [QTablePair],
    overlay: &mut CyclonOverlay,
    rng: &mut R,
    io: AggIo<'_>,
) -> AggregationRoundStats {
    let AggIo {
        mut net,
        tracer,
        mut codec,
    } = io;
    let n = tables.len();
    let mut stats = AggregationRoundStats::default();
    let mut order: Vec<u32> = (0..n as u32).filter(|&i| overlay.is_alive(i)).collect();
    order.shuffle(rng);
    for p in order {
        if let Some(net) = net.as_deref() {
            if !net.is_up(p) {
                continue;
            }
        }
        let mut attempts = 0;
        loop {
            attempts += 1;
            let Some(q) = overlay.random_alive_peer(p, rng) else {
                break;
            };
            if p == q {
                break;
            }
            if let Some(net) = net.as_deref() {
                if !net.is_up(q) {
                    stats.skipped_down += 1;
                    overlay.node_mut(p).remove(q);
                    if let Some(tracer) = tracer {
                        tracer.emit(EventKind::MergeRetried {
                            pm: p,
                            attempt: attempts as u32,
                        });
                    }
                    if attempts >= AGGREGATION_MAX_ATTEMPTS {
                        break;
                    }
                    continue;
                }
            }
            // Coded exchanges encode at attempt time: the push leg is
            // transmitted (and its bytes spent, its codec state
            // advanced) whether or not delivery succeeds.
            let push = codec
                .as_deref_mut()
                .map(|codecs| codecs.encode_push(p as usize, q as usize, tables));
            if let Some(tracer) = tracer {
                if tracer.is_on() {
                    // Unified wire accounting: the push leg carrying p's
                    // trained set is transmitted at attempt time.
                    tracer.add("net.msgs", 1);
                    match &push {
                        // Actual bytes on the wire (body + framing).
                        Some(body) => {
                            tracer.add(
                                "net.bytes_tx",
                                (body.len() + glap_codec::WIRE_OVERHEAD) as u64,
                            );
                            account_codec_payload(tracer, body);
                        }
                        None => tracer.add(
                            "net.bytes_tx",
                            tables[p as usize].trained_pairs() as u64 * ENTRY_BYTES,
                        ),
                    }
                }
            }
            let delivered = match net.as_deref_mut() {
                Some(net) => net.request(p, q).is_ok(),
                None => true,
            };
            if delivered {
                match (codec.as_deref_mut(), push) {
                    (Some(codecs), Some(push)) => {
                        let reply = codecs
                            .complete(p as usize, q as usize, tables, &push)
                            .expect("codec produced an unappliable payload");
                        if let Some(tracer) = tracer {
                            if tracer.is_on() {
                                let push_bytes = (push.len() + glap_codec::WIRE_OVERHEAD) as u64;
                                let reply_bytes = (reply.len() + glap_codec::WIRE_OVERHEAD) as u64;
                                tracer.add("agg.bytes", push_bytes + reply_bytes);
                                tracer.add("agg.merges", 1);
                                // Pull leg completes the round trip.
                                tracer.add("net.msgs", 1);
                                tracer.add("net.bytes_tx", reply_bytes);
                                tracer.add("net.bytes_rx", push_bytes + reply_bytes);
                                account_codec_payload(tracer, &reply);
                            }
                            tracer.emit(EventKind::MergeApplied { a: p, b: q });
                        }
                    }
                    _ => {
                        if let Some(tracer) = tracer {
                            if tracer.is_on() {
                                // Push–pull ships both trained sets, one per leg.
                                let p_pairs = tables[p as usize].trained_pairs() as u64;
                                let q_pairs = tables[q as usize].trained_pairs() as u64;
                                let pairs = p_pairs + q_pairs;
                                tracer.add("agg.bytes", pairs * ENTRY_BYTES);
                                tracer.add("agg.merges", 1);
                                // Pull leg completes the round trip.
                                tracer.add("net.msgs", 1);
                                tracer.add("net.bytes_tx", q_pairs * ENTRY_BYTES);
                                tracer.add("net.bytes_rx", pairs * ENTRY_BYTES);
                            }
                            tracer.emit(EventKind::MergeApplied { a: p, b: q });
                        }
                        merge_pair(tables, p as usize, q as usize);
                    }
                }
                stats.merges += 1;
                break;
            }
            if let Some(codecs) = codec.as_deref_mut() {
                codecs.push_failed(p as usize, q as usize);
            }
            stats.dropped += 1;
            if let Some(tracer) = tracer {
                tracer.emit(EventKind::MergeRetried {
                    pm: p,
                    attempt: attempts as u32,
                });
            }
            if attempts >= AGGREGATION_MAX_ATTEMPTS {
                break;
            }
        }
    }
    stats
}

/// A raw pointer to one PM's table, handed to exactly one worker of a
/// merge wave. Safety rests on the wave decomposition: every wave's
/// pairs are vertex-disjoint, so no two tasks of one `parallel_for_each`
/// ever alias a table.
struct MergeTask {
    a: *mut QTablePair,
    b: *mut QTablePair,
}
// SAFETY: each task carries exclusive access to its two (disjoint)
// tables for the duration of one wave; the pool joins before the next
// wave is built.
unsafe impl Send for MergeTask {}

/// The deterministic schedule of one sharded aggregation round:
/// partner selection plus greedy wave decomposition, computed without
/// touching any tables. One plan drives every merge backend — the boxed
/// [`aggregation_round_sharded`], the trainer's arena round and its
/// fused learn+aggregate sweep — so all of them apply bit-identical
/// merges in bit-identical order.
#[derive(Debug, Clone, Default)]
pub struct AggPlan {
    /// Exchanges `(initiator, partner)` in serial activation order.
    pub pairs: Vec<(u32, u32)>,
    /// `wave[k]` is the merge wave of `pairs[k]`.
    pub wave: Vec<u32>,
    /// Wave → its pairs, exchange order within each wave. Pairs of one
    /// wave are vertex-disjoint, so their symmetric merges commute and
    /// may run in parallel; waves must be applied in index order.
    pub by_wave: Vec<Vec<(u32, u32)>>,
}

impl AggPlan {
    /// Number of merge waves.
    pub fn n_waves(&self) -> u32 {
        self.by_wave.len() as u32
    }
}

/// Draws one sharded round's schedule (steps 1–2 of the determinism
/// scheme documented on [`aggregation_round_sharded`]): a `round_seed`
/// and the activation shuffle off the shared phase RNG, per-PM partner
/// picks from [`Stream::AggregationPm`] streams (pruning dead view
/// entries exactly like the serial pick — the one overlay mutation),
/// then the greedy vertex-disjoint wave decomposition.
pub fn build_agg_plan<R: Rng>(
    overlay: &mut CyclonOverlay,
    rng: &mut R,
    threads: Option<usize>,
) -> AggPlan {
    let n = overlay.len();

    // Exchange order: the same shared-RNG shuffle the serial round uses.
    let round_seed: u64 = rng.gen();
    let mut order: Vec<u32> = (0..n as u32).filter(|&i| overlay.is_alive(i)).collect();
    order.shuffle(rng);

    // Parallel partner selection on disjoint overlay slots.
    let (nodes, alive) = overlay.split_mut();
    struct Select<'a> {
        p: u32,
        node: &'a mut glap_cyclon::CyclonNode,
        picked: u32,
    }
    let mut slots: Vec<Select<'_>> = nodes
        .iter_mut()
        .enumerate()
        .filter(|&(i, _)| alive[i])
        .map(|(i, node)| Select {
            p: i as u32,
            node,
            picked: u32::MAX,
        })
        .collect();
    glap_par::parallel_for_each(&mut slots, threads, |s| {
        let mut prng = stream_rng(round_seed, Stream::AggregationPm(s.p));
        if let Some(q) = CyclonOverlay::random_alive_peer_in(s.node, alive, &mut prng) {
            if q != s.p {
                s.picked = q;
            }
        }
    });
    let mut picked = vec![u32::MAX; n];
    for s in &slots {
        picked[s.p as usize] = s.picked;
    }
    drop(slots);

    // Pairs in exchange order, each tagged with its merge wave.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(order.len());
    let mut wave: Vec<u32> = Vec::with_capacity(order.len());
    let mut next_free = vec![0u32; n];
    for &p in &order {
        let q = picked[p as usize];
        if q == u32::MAX {
            continue;
        }
        let w = next_free[p as usize].max(next_free[q as usize]);
        next_free[p as usize] = w + 1;
        next_free[q as usize] = w + 1;
        pairs.push((p, q));
        wave.push(w);
    }
    let n_waves = wave.iter().copied().max().map_or(0, |w| w + 1);

    // Wave → its pairs, in exchange order within the wave.
    let mut by_wave: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_waves as usize];
    for (k, &pq) in pairs.iter().enumerate() {
        by_wave[wave[k] as usize].push(pq);
    }
    AggPlan {
        pairs,
        wave,
        by_wave,
    }
}

/// [`aggregation_round`] restructured for multi-core: partner selection
/// fans out over per-PM RNG streams, and the merges are applied in
/// vertex-disjoint *waves* that parallelize safely — with identical
/// results, telemetry and counters at any thread count.
///
/// How determinism survives the sharding:
///
/// 1. **Selection.** One `round_seed` is drawn from the shared phase RNG
///    (keeping its cursor, and therefore every later draw, checkpoint-
///    compatible); each alive PM `p` then picks its partner from its own
///    [`Stream::AggregationPm`]`(p)` stream, pruning dead view entries
///    exactly like the serial pick. Draws no longer depend on activation
///    order, so any number of workers computes the same partner vector.
///    This per-PM re-seed is the one place the sharded round differs
///    from the serial round for the *same* master seed — the same
///    deliberate trade PR 5 made for the learning phase.
/// 2. **Waves.** Exchanges are ordered by the shared-RNG shuffle (as
///    serially) and decomposed greedily: a pair's wave is one past the
///    latest wave touching either endpoint, so within a wave all pairs
///    are vertex-disjoint and their symmetric merges commute — applying
///    a wave in parallel is equivalent to applying its pairs in order.
/// 3. **Emission.** Events and counters are emitted serially in exchange
///    order by the coordinating thread (the tracer is single-threaded
///    anyway). A pair's byte accounting must read its endpoints' tables
///    *after* all earlier exchanges and *before* its own, so waves are
///    applied lazily as the emission cursor reaches them; any pair from
///    an earlier wave that sits *later* in exchange order is provably
///    endpoint-disjoint from the current pair (sharing an endpoint would
///    have forced it into a later wave), so early application cannot
///    perturb the bytes the serial round would have reported.
///
/// Only ideal-network, uncoded rounds shard: fault randomness and codec
/// state are inherently sequential, so callers keep those on
/// [`aggregation_round`] (asserted here).
pub fn aggregation_round_sharded<R: Rng>(
    tables: &mut [QTablePair],
    overlay: &mut CyclonOverlay,
    rng: &mut R,
    threads: Option<usize>,
    io: AggIo<'_>,
) -> AggregationRoundStats {
    let AggIo {
        mut net,
        tracer,
        codec,
    } = io;
    assert!(
        codec.is_none(),
        "coded exchanges are stateful per peer — use aggregation_round"
    );
    if let Some(net) = net.as_deref() {
        assert!(
            net.is_ideal(),
            "fault randomness is sequential — use aggregation_round"
        );
    }
    let mut stats = AggregationRoundStats::default();
    let plan = build_agg_plan(overlay, rng, threads);

    let base = tables.as_mut_ptr();
    let apply_wave = |w: u32| {
        // SAFETY: pairs of one wave are vertex-disjoint by construction,
        // so every `MergeTask` points at two tables no other task (or
        // the coordinating thread, which only builds tasks here) touches
        // until the pool joins.
        let mut tasks: Vec<MergeTask> = plan.by_wave[w as usize]
            .iter()
            .map(|&(p, q)| MergeTask {
                a: unsafe { base.add(p as usize) },
                b: unsafe { base.add(q as usize) },
            })
            .collect();
        glap_par::parallel_for_each(&mut tasks, threads, |t| unsafe {
            QTablePair::merge_symmetric(&mut *t.a, &mut *t.b);
        });
    };

    // Serial emission sweep in exchange order, applying waves lazily so
    // byte accounting reads the same table states the serial round saw.
    let mut applied = 0u32;
    for (k, &(p, q)) in plan.pairs.iter().enumerate() {
        while applied < plan.wave[k] {
            apply_wave(applied);
            applied += 1;
        }
        if let Some(tracer) = tracer {
            if tracer.is_on() {
                // Same per-exchange totals as the serial round: a
                // push–pull round trip ships both trained sets.
                let p_pairs = tables[p as usize].trained_pairs() as u64;
                let q_pairs = tables[q as usize].trained_pairs() as u64;
                let total = p_pairs + q_pairs;
                tracer.add("net.msgs", 2);
                tracer.add("net.bytes_tx", total * ENTRY_BYTES);
                tracer.add("net.bytes_rx", total * ENTRY_BYTES);
                tracer.add("agg.bytes", total * ENTRY_BYTES);
                tracer.add("agg.merges", 1);
            }
        }
        if let Some(net) = net.as_deref_mut() {
            let _ = net.request(p, q);
        }
        if let Some(tracer) = tracer {
            tracer.emit(EventKind::MergeApplied { a: p, b: q });
        }
        stats.merges += 1;
    }
    while applied < plan.n_waves() {
        apply_wave(applied);
        applied += 1;
    }
    stats
}

/// Symmetric push–pull merge of two PMs' tables: both end with the
/// identical union/average result.
pub fn merge_pair(tables: &mut [QTablePair], p: usize, q: usize) {
    assert_ne!(p, q);
    let (lo, hi) = if p < q { (p, q) } else { (q, p) };
    let (head, tail) = tables.split_at_mut(hi);
    // One in-place symmetric pass: bit-for-bit the same result as the
    // clone-then-average formulation, without cloning a 2×6561-entry
    // table per merge.
    QTablePair::merge_symmetric(&mut head[lo], &mut tail[0]);
}

/// Mean pairwise cosine similarity across alive PMs' tables — the Figure 5
/// metric. Exact all-pairs is O(n²·|table|); `sample_pairs` random pairs
/// give an unbiased estimate (pass `usize::MAX` to force exact).
pub fn mean_pairwise_similarity<R: Rng>(
    tables: &[QTablePair],
    overlay: &CyclonOverlay,
    sample_pairs: usize,
    rng: &mut R,
) -> f64 {
    let alive: Vec<usize> = (0..tables.len())
        .filter(|&i| overlay.is_alive(i as u32))
        .collect();
    if alive.len() < 2 {
        return 1.0;
    }
    let total_pairs = alive.len() * (alive.len() - 1) / 2;
    if sample_pairs >= total_pairs {
        // Exact.
        let mut sum = 0.0;
        for i in 0..alive.len() {
            for j in i + 1..alive.len() {
                sum += tables[alive[i]].cosine_similarity(&tables[alive[j]]);
            }
        }
        return sum / total_pairs as f64;
    }
    let mut sum = 0.0;
    for _ in 0..sample_pairs {
        let i = alive[rng.gen_range(0..alive.len())];
        let j = loop {
            let j = alive[rng.gen_range(0..alive.len())];
            if j != i {
                break j;
            }
        };
        sum += tables[i].cosine_similarity(&tables[j]);
    }
    sum / sample_pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::Resources;
    use glap_cyclon::RoundIo;
    use glap_qlearn::{PmState, QParams, VmAction};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn seeded_tables(n: usize, seed_values: bool) -> Vec<QTablePair> {
        let mut tables: Vec<QTablePair> = (0..n)
            .map(|_| QTablePair::new(QParams::default()))
            .collect();
        if seed_values {
            for (i, t) in tables.iter_mut().enumerate() {
                let s = PmState::from_utilization(Resources::splat(0.5));
                let a = VmAction::from_demand(Resources::splat(0.3));
                t.out.set(s, a, i as f64);
                t.r#in.set(s, a, -(i as f64));
            }
        }
        tables
    }

    fn overlay(n: usize, rng: &mut SmallRng) -> CyclonOverlay {
        let mut o = CyclonOverlay::new(n, 6, 3);
        o.bootstrap_random(rng);
        o
    }

    #[test]
    fn merge_pair_makes_both_identical() {
        let mut tables = seeded_tables(2, true);
        merge_pair(&mut tables, 0, 1);
        assert!((tables[0].cosine_similarity(&tables[1]) - 1.0).abs() < 1e-12);
        let s = PmState::from_utilization(Resources::splat(0.5));
        let a = VmAction::from_demand(Resources::splat(0.3));
        assert_eq!(tables[0].out.get(s, a), 0.5);
        assert_eq!(tables[1].out.get(s, a), 0.5);
    }

    #[test]
    fn aggregation_converges_to_high_similarity() {
        let n = 40;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, true);
        let before = mean_pairwise_similarity(&tables, &o, usize::MAX, &mut rng);
        for _ in 0..15 {
            o.run_round(&mut rng, RoundIo::default());
            aggregation_round(&mut tables, &mut o, &mut rng, AggIo::default());
        }
        let after = mean_pairwise_similarity(&tables, &o, usize::MAX, &mut rng);
        assert!(
            after > before,
            "similarity should improve: {before} → {after}"
        );
        assert!(after > 0.999, "similarity after aggregation: {after}");
    }

    #[test]
    fn aggregation_preserves_global_mean_approximately() {
        // Gossip averaging conserves the mean of each pair across the
        // population (symmetric exchanges).
        let n = 16;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, true);
        let s = PmState::from_utilization(Resources::splat(0.5));
        let a = VmAction::from_demand(Resources::splat(0.3));
        let mean_before: f64 = tables.iter().map(|t| t.out.get(s, a)).sum::<f64>() / n as f64;
        for _ in 0..20 {
            o.run_round(&mut rng, RoundIo::default());
            aggregation_round(&mut tables, &mut o, &mut rng, AggIo::default());
        }
        let mean_after: f64 = tables.iter().map(|t| t.out.get(s, a)).sum::<f64>() / n as f64;
        assert!(
            (mean_after - mean_before).abs() < 1.0,
            "mean drifted: {mean_before} → {mean_after}"
        );
        // And individual values are close to the mean now.
        for t in &tables {
            assert!((t.out.get(s, a) - mean_after).abs() < 1.5);
        }
    }

    #[test]
    fn untrained_pms_adopt_knowledge() {
        let n = 10;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, false);
        // Only PM 0 trained anything.
        let s = PmState::from_utilization(Resources::splat(0.5));
        let a = VmAction::from_demand(Resources::splat(0.3));
        tables[0].out.set(s, a, 42.0);
        for _ in 0..15 {
            o.run_round(&mut rng, RoundIo::default());
            aggregation_round(&mut tables, &mut o, &mut rng, AggIo::default());
        }
        for t in &tables {
            assert_eq!(t.out.get(s, a), 42.0);
            assert!(t.out.is_visited(s, a));
        }
    }

    #[test]
    fn similarity_sampling_approximates_exact() {
        let n = 20;
        let mut rng = SmallRng::seed_from_u64(13);
        let o = overlay(n, &mut rng);
        let tables = seeded_tables(n, true);
        let exact = mean_pairwise_similarity(&tables, &o, usize::MAX, &mut rng);
        let sampled = mean_pairwise_similarity(&tables, &o, 400, &mut rng);
        assert!(
            (exact - sampled).abs() < 0.2,
            "exact {exact} sampled {sampled}"
        );
    }

    fn table_bytes(t: &QTablePair) -> Vec<u8> {
        use glap_snapshot::Checkpointable;
        let mut w = glap_snapshot::Writer::new();
        t.save(&mut w);
        w.into_bytes()
    }

    fn run_rounds(n: usize, codec: Option<glap_codec::CodecKind>, lossy: bool) -> Vec<QTablePair> {
        use glap_dcsim::FaultProfile;
        let mut rng = SmallRng::seed_from_u64(21);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, true);
        let mut codecs = codec.map(|k| FleetCodecs::new(n, k));
        let mut net = lossy.then(|| NetworkModel::new(n, FaultProfile::lossy(0.2), 77));
        for _ in 0..10 {
            o.run_round(&mut rng, RoundIo::default());
            let mut io = AggIo::default();
            if let Some(net) = net.as_mut() {
                io.net = Some(net);
            }
            if let Some(codecs) = codecs.as_mut() {
                io = io.with_codec(codecs);
            }
            aggregation_round(&mut tables, &mut o, &mut rng, io);
        }
        tables
    }

    #[test]
    fn delta_coded_rounds_match_legacy_bitwise() {
        // The delta codec is lossless and its exchange semantics mirror
        // the legacy symmetric merge, so coded sim-path rounds must be
        // bit-identical — tables included — for the same RNG draws.
        for lossy in [false, true] {
            let legacy = run_rounds(24, None, lossy);
            let delta = run_rounds(24, Some(glap_codec::CodecKind::Delta), lossy);
            for (a, b) in legacy.iter().zip(&delta) {
                assert_eq!(table_bytes(a), table_bytes(b), "lossy={lossy}");
            }
        }
    }

    #[test]
    fn lossy_codecs_still_drive_similarity_up() {
        use glap_codec::CodecKind;
        let mut rng = SmallRng::seed_from_u64(21);
        let o = overlay(24, &mut rng);
        for kind in [CodecKind::Quantized, CodecKind::Priority] {
            let tables = run_rounds(24, Some(kind), false);
            let sim = mean_pairwise_similarity(&tables, &o, usize::MAX, &mut rng);
            assert!(sim > 0.999, "{kind}: similarity after coded rounds {sim}");
            for t in &tables {
                assert!(t.out.raw_values().iter().all(|v| v.is_finite()));
                assert!(t.r#in.raw_values().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn dead_nodes_are_excluded_from_similarity() {
        let n = 5;
        let mut rng = SmallRng::seed_from_u64(17);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, false);
        let s = PmState::from_utilization(Resources::splat(0.5));
        let a = VmAction::from_demand(Resources::splat(0.3));
        // Node 4 diverges wildly but is dead.
        tables[4].out.set(s, a, 1e9);
        o.set_dead(4);
        for t in tables.iter_mut().take(4) {
            t.out.set(s, a, 1.0);
        }
        let sim = mean_pairwise_similarity(&tables, &o, usize::MAX, &mut rng);
        assert!((sim - 1.0).abs() < 1e-12);
    }

    /// Ten sharded rounds over an ideal network; returns the table bytes,
    /// the merge count and the network stats so callers can byte-compare
    /// whole runs.
    fn run_sharded_rounds(
        n: usize,
        threads: Option<usize>,
        traced: bool,
    ) -> (Vec<Vec<u8>>, u64, glap_dcsim::NetStats) {
        let (tracer, _sink) = if traced {
            let (t, s) = glap_telemetry::Tracer::memory();
            (t, Some(s))
        } else {
            (glap_telemetry::Tracer::off(), None)
        };
        let mut rng = SmallRng::seed_from_u64(33);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, true);
        let mut net = NetworkModel::ideal(n);
        let mut merges = 0;
        for _ in 0..10 {
            o.run_round(&mut rng, RoundIo::default());
            let stats = aggregation_round_sharded(
                &mut tables,
                &mut o,
                &mut rng,
                threads,
                AggIo::full(&mut net, &tracer),
            );
            merges += stats.merges;
        }
        (tables.iter().map(table_bytes).collect(), merges, net.stats)
    }

    #[test]
    fn sharded_rounds_are_thread_count_invariant() {
        let one = run_sharded_rounds(32, Some(1), false);
        for threads in [2, 4, 7] {
            assert_eq!(
                run_sharded_rounds(32, Some(threads), false),
                one,
                "threads={threads}"
            );
        }
        assert!(one.1 > 0, "no merges happened");
        assert_eq!(one.2.delivered, one.2.attempts);
    }

    #[test]
    fn sharded_rounds_are_tracer_invariant() {
        // Tracing reads no randomness, so attaching a tracer must not
        // change a single table byte or delivery outcome.
        assert_eq!(
            run_sharded_rounds(32, Some(3), true),
            run_sharded_rounds(32, Some(3), false)
        );
    }

    #[test]
    fn sharded_rounds_converge_and_preserve_mean() {
        let n = 40;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, true);
        let s = PmState::from_utilization(Resources::splat(0.5));
        let a = VmAction::from_demand(Resources::splat(0.3));
        let mean_before: f64 = tables.iter().map(|t| t.out.get(s, a)).sum::<f64>() / n as f64;
        let before = mean_pairwise_similarity(&tables, &o, usize::MAX, &mut rng);
        for _ in 0..15 {
            o.run_round(&mut rng, RoundIo::default());
            aggregation_round_sharded(&mut tables, &mut o, &mut rng, Some(4), AggIo::default());
        }
        let after = mean_pairwise_similarity(&tables, &o, usize::MAX, &mut rng);
        assert!(
            after > before,
            "similarity did not rise: {before} → {after}"
        );
        assert!(after > 0.999, "tables did not converge: {after}");
        let mean_after: f64 = tables.iter().map(|t| t.out.get(s, a)).sum::<f64>() / n as f64;
        assert!(
            (mean_after - mean_before).abs() < 0.05 * mean_before.abs().max(1.0),
            "gossip averaging drifted: {mean_before} → {mean_after}"
        );
    }

    #[test]
    fn sharded_rounds_respect_dead_nodes() {
        let n = 16;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut o = overlay(n, &mut rng);
        let mut tables = seeded_tables(n, true);
        let dead_bytes = table_bytes(&tables[3]);
        o.set_dead(3);
        for _ in 0..8 {
            o.run_round(&mut rng, RoundIo::default());
            aggregation_round_sharded(&mut tables, &mut o, &mut rng, Some(4), AggIo::default());
        }
        // A dead PM neither initiates nor answers: its table is untouched.
        assert_eq!(table_bytes(&tables[3]), dead_bytes);
    }
}
