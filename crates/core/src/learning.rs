//! The learning phase (Algorithm 1).
//!
//! Each eligible PM — resource utilization at or below the threshold —
//! pulls the VM profiles of one overlay neighbour, merges them with its
//! own, optionally duplicates the list to cover highly loaded states, and
//! then *locally simulates* the consolidation process: it splits the
//! profiles into a simulated sender PM and a simulated target PM, migrates
//! a random VM between them and applies the Bellman update of Eq. (1) to
//! both the `out` and the `in` table.
//!
//! The state of a simulated PM **before** the action, and the action label
//! itself, are computed from the VMs' *average* demands, while the state
//! **after** the action uses *current* demands — exactly the scheme of
//! Figure 3, which is what lets the learned values anticipate load
//! variation rather than just its instantaneous snapshot.

use crate::config::GlapConfig;
use glap_cluster::{DataCenter, DcView, PmId, Resources, VmProfile};
use glap_qlearn::{PmState, TrainTarget, VmAction};
use rand::seq::SliceRandom;
use rand::Rng;

/// Sum of average demands of a profile set.
fn sum_avg(profiles: &[VmProfile], idxs: &[usize]) -> Resources {
    idxs.iter().map(|&i| profiles[i].avg_value()).sum()
}

/// Sum of current demands of a profile set.
fn sum_current(profiles: &[VmProfile], idxs: &[usize]) -> Resources {
    idxs.iter().map(|&i| profiles[i].current).sum()
}

/// Runs `iterations` simulated migration steps over `profiles`, updating
/// `tables` in place. This is the inner loop of Algorithm 1 (lines 7–13).
///
/// Generic over the [`TrainTarget`] storage — a boxed
/// [`QTablePair`](glap_qlearn::QTablePair) or an arena slot view — so
/// both engines monomorphize the *same* loop and draw the *same* RNG
/// sequence.
pub fn local_train<T: TrainTarget, R: Rng + ?Sized>(
    tables: &mut T,
    profiles: &[VmProfile],
    iterations: usize,
    rng: &mut R,
) {
    let mut idxs = Vec::new();
    local_train_with(tables, profiles, iterations, rng, &mut idxs);
}

/// [`local_train`] with a caller-owned index scratch buffer, so a
/// training loop that runs every round reuses one allocation instead of
/// rebuilding the shuffle vector per call. Draws the identical RNG
/// sequence as [`local_train`] — the scratch is refilled with the same
/// `0..len` contents before the first shuffle.
pub fn local_train_with<T: TrainTarget, R: Rng + ?Sized>(
    tables: &mut T,
    profiles: &[VmProfile],
    iterations: usize,
    rng: &mut R,
    idxs: &mut Vec<usize>,
) {
    if profiles.len() < 2 {
        return;
    }
    idxs.clear();
    idxs.extend(0..profiles.len());
    for _ in 0..iterations {
        // Split the profiles into a simulated sender and a simulated
        // target (disjoint random subsets; sender non-empty).
        idxs.shuffle(rng);
        let split = rng.gen_range(1..profiles.len());
        let (vmss, vmst) = idxs.split_at(split);

        // Pick the VM to migrate from the sender subset.
        let pick = rng.gen_range(0..vmss.len());
        let vm = vmss[pick];
        let action = VmAction::from_demand(profiles[vm].avg_value());

        // --- updateOUT: sender's perspective -------------------------
        // Before: average demands of the whole sender set.
        let s_before = PmState::from_utilization(sum_avg(profiles, vmss).clamp(0.0, 1.0));
        // After: current demands of the remaining VMs.
        let mut remaining = sum_current(profiles, vmss);
        remaining -= profiles[vm].current;
        let s_after = PmState::from_utilization(remaining.clamp(0.0, 1.0));
        tables.train_out(s_before, action, s_after);

        // --- updateIN: target's perspective ---------------------------
        let t_before = PmState::from_utilization(sum_avg(profiles, vmst).clamp(0.0, 1.0));
        let t_after_raw = sum_current(profiles, vmst) + profiles[vm].current;
        let t_after = PmState::from_utilization(t_after_raw.clamp(0.0, 1.0));
        tables.train_in(t_before, action, t_after);
    }
}

/// Assembles the profile list a PM trains on: its own VMs' profiles plus
/// one neighbour's, duplicated `duplication` times (Algorithm 1 lines
/// 4–6).
pub fn gather_profiles(
    dc: &DataCenter,
    pm: PmId,
    neighbor: Option<PmId>,
    duplication: usize,
) -> Vec<VmProfile> {
    let mut profiles = Vec::new();
    gather_profiles_into(dc.view(), pm, neighbor, duplication, &mut profiles);
    profiles
}

/// [`gather_profiles`] into a caller-owned buffer (cleared first), over a
/// shared [`DcView`] so concurrent per-PM workers can all read the data
/// center while each fills its own scratch. Duplication copies from
/// within the buffer — no temporary list.
pub fn gather_profiles_into(
    dc: DcView<'_>,
    pm: PmId,
    neighbor: Option<PmId>,
    duplication: usize,
    profiles: &mut Vec<VmProfile>,
) {
    profiles.clear();
    for &vm in dc.pm(pm).vms() {
        profiles.push(dc.vm(vm).profile());
    }
    if let Some(nb) = neighbor {
        for &vm in dc.pm(nb).vms() {
            profiles.push(dc.vm(vm).profile());
        }
    }
    if duplication > 1 && !profiles.is_empty() {
        let base = profiles.len();
        for _ in 1..duplication {
            profiles.extend_from_within(..base);
        }
    }
}

/// Duplication factor that lets random subsets of `profiles` reach
/// overload-level sums — Algorithm 1's "duplicate vms *if required*".
/// Without this, training on an already-consolidated cluster (where only
/// lightly loaded PMs are eligible) never visits high-load states and the
/// learned admission control turns dangerously optimistic.
pub fn required_duplication(profiles: &[VmProfile], minimum: usize) -> usize {
    let sum_cpu: f64 = profiles.iter().map(|p| p.avg_value().cpu()).sum();
    if sum_cpu <= 0.0 {
        return minimum.max(1);
    }
    // Total available CPU mass of ≈ 2.2 capacities lets sender+target
    // subsets individually cross 1.0.
    let needed = (2.2 / sum_cpu).ceil() as usize;
    needed.clamp(minimum.max(1), 16)
}

/// Repeats the profile list `factor` times (Algorithm 1 line 6).
pub fn duplicate_profiles(mut profiles: Vec<VmProfile>, factor: usize) -> Vec<VmProfile> {
    if factor > 1 && !profiles.is_empty() {
        let base = profiles.clone();
        for _ in 1..factor {
            profiles.extend(base.iter().copied());
        }
    }
    profiles
}

/// Whether a PM is eligible to run the learning phase this round
/// (Algorithm 1 line 3): active and with CPU utilization at or below the
/// threshold.
pub fn is_eligible(dc: &DataCenter, pm: PmId, cfg: &GlapConfig) -> bool {
    let p = dc.pm(pm);
    p.is_active() && p.utilization().cpu() <= cfg.learning_threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, VmId, VmSpec};
    use glap_qlearn::{QParams, QTablePair};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn profile(cur: f64, avg: f64) -> VmProfile {
        VmProfile::from_fractions(Resources::splat(cur), Resources::splat(avg))
    }

    #[test]
    fn training_visits_states_and_actions() {
        let mut q = QTablePair::new(QParams::default());
        let profiles: Vec<VmProfile> = (0..8)
            .map(|i| profile(0.05 + 0.02 * i as f64, 0.06 + 0.02 * i as f64))
            .collect();
        let mut rng = SmallRng::seed_from_u64(3);
        local_train(&mut q, &profiles, 200, &mut rng);
        assert!(q.out.visited_count() > 0);
        assert!(q.r#in.visited_count() > 0);
    }

    #[test]
    fn training_with_too_few_profiles_is_noop() {
        let mut q = QTablePair::new(QParams::default());
        let mut rng = SmallRng::seed_from_u64(3);
        local_train(&mut q, &[profile(0.5, 0.5)], 50, &mut rng);
        assert_eq!(q.trained_pairs(), 0);
    }

    #[test]
    fn overloading_acceptances_learn_negative_values() {
        let mut q = QTablePair::new(QParams::default());
        // Heavy profiles: any subset of 3+ overloads a simulated target.
        let profiles: Vec<VmProfile> = (0..10).map(|_| profile(0.4, 0.4)).collect();
        let mut rng = SmallRng::seed_from_u64(5);
        local_train(&mut q, &profiles, 2000, &mut rng);
        // Some in-table entry must have learned a negative value.
        let any_negative = q.r#in.iter_visited().any(|(_, _, v)| v < 0.0);
        assert!(any_negative, "no negative in-values learned");
    }

    #[test]
    fn light_profiles_learn_positive_in_values() {
        let mut q = QTablePair::new(QParams::default());
        let profiles: Vec<VmProfile> = (0..6).map(|_| profile(0.05, 0.05)).collect();
        let mut rng = SmallRng::seed_from_u64(7);
        local_train(&mut q, &profiles, 500, &mut rng);
        // Sums stay ≤ 0.35, far from overload: everything positive.
        assert!(q.r#in.iter_visited().all(|(_, _, v)| v >= 0.0));
    }

    fn dc_two_pms() -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(2));
        for _ in 0..6 {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        for i in 0..3 {
            dc.place(VmId(i), PmId(0));
        }
        for i in 3..6 {
            dc.place(VmId(i), PmId(1));
        }
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        dc.step(&mut src);
        dc
    }

    #[test]
    fn gather_profiles_combines_both_pms() {
        let dc = dc_two_pms();
        let p = gather_profiles(&dc, PmId(0), Some(PmId(1)), 1);
        assert_eq!(p.len(), 6);
        let p2 = gather_profiles(&dc, PmId(0), None, 1);
        assert_eq!(p2.len(), 3);
    }

    #[test]
    fn gather_profiles_duplicates() {
        let dc = dc_two_pms();
        let p = gather_profiles(&dc, PmId(0), Some(PmId(1)), 3);
        assert_eq!(p.len(), 18);
    }

    #[test]
    fn gather_into_reused_buffer_matches_allocating_path() {
        let dc = dc_two_pms();
        let mut buf = vec![profile(0.9, 0.9); 3]; // stale contents must be cleared
        for dup in [1usize, 2, 3] {
            gather_profiles_into(dc.view(), PmId(0), Some(PmId(1)), dup, &mut buf);
            assert_eq!(buf, gather_profiles(&dc, PmId(0), Some(PmId(1)), dup));
        }
    }

    #[test]
    fn eligibility_respects_threshold() {
        let dc = dc_two_pms();
        // 3 VMs at 50% of nominal: cpu = 3*0.5*500/2660 ≈ 0.28 ≤ 0.5.
        let cfg = GlapConfig::default();
        assert!(is_eligible(&dc, PmId(0), &cfg));
        let strict = GlapConfig {
            learning_threshold: 0.1,
            ..cfg
        };
        assert!(!is_eligible(&dc, PmId(0), &strict));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let profiles: Vec<VmProfile> = (0..8)
            .map(|i| profile(0.1 + 0.03 * i as f64, 0.1))
            .collect();
        let run = |seed: u64| {
            let mut q = QTablePair::new(QParams::default());
            let mut rng = SmallRng::seed_from_u64(seed);
            local_train(&mut q, &profiles, 100, &mut rng);
            q
        };
        assert_eq!(run(11), run(11));
    }
}
