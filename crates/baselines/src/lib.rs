//! # glap-baselines — the comparison algorithms of the GLAP evaluation
//!
//! Re-implementations of the three consolidation algorithms the paper
//! compares against (§V-A), plus the offline packing baseline of Figure 6:
//!
//! * [`grmp`] — GRMP (Wuhib et al.): aggressive gossip packing with a
//!   static 0.8 threshold;
//! * [`ecocloud`] — EcoCloud (Mastroianni et al.): gradual probabilistic
//!   Bernoulli-trial consolidation with T1 = 0.3 / T2 = 0.8 and a
//!   broadcast coordinator;
//! * [`pabfd`] — PABFD (Beloglazov & Buyya): centralized MAD-threshold
//!   detection with power-aware best-fit-decreasing re-placement;
//! * [`bfd`] — offline best-fit-decreasing: the fewest PMs an omniscient
//!   packer needs with zero overload.
//!
//! All three online policies implement
//! [`glap_dcsim::ConsolidationPolicy`], so they run under the identical
//! engine, trace, placement and accounting as GLAP itself.

pub mod bfd;
pub mod ecocloud;
pub mod grmp;
pub mod pabfd;

pub use bfd::{bfd_baseline, bfd_pack};
pub use ecocloud::{EcoCloudConfig, EcoCloudPolicy};
pub use grmp::{GrmpConfig, GrmpPolicy};
pub use pabfd::{PabfdConfig, PabfdPolicy, ThresholdMethod};
