//! PABFD — the centralized consolidation of Beloglazov & Buyya (CCPE
//! 2012): "a centralized dynamic threshold based heuristic consolidation
//! algorithm in which a centralized server periodically monitors resources
//! usage of PMs and using global information makes consolidation
//! decisions" (GLAP §V-A). The dynamic upper threshold uses the Median
//! Absolute Deviation of each host's recent CPU history:
//!
//! ```text
//! T_u = 1 − s · MAD(history),   s = 2.5
//! ```
//!
//! Per round the controller (1) evicts VMs from hosts above their `T_u`
//! via the Minimum-Migration-Time policy until they drop below it,
//! (2) tentatively evacuates hosts below the static lower threshold, and
//! (3) re-places all evicted VMs with Power-Aware Best-Fit-Decreasing:
//! VMs sorted by CPU demand decreasing, each placed on the feasible active
//! host with the least power increase (ties → tightest fit), waking
//! sleeping hosts only when nothing fits.
//!
//! Beloglazov & Buyya compare several estimators of the dynamic threshold
//! — Median Absolute Deviation, Inter-Quartile Range and (robust) Local
//! Regression; the GLAP paper's §II recounts exactly that comparison. All
//! three are implemented ([`ThresholdMethod`]); the GLAP evaluation uses
//! MAD ("The Median Absolute Deviation (MAD) is used as an estimator of
//! upper threshold value"), which is the default here.

use glap_cluster::{DataCenter, PmId, Resources, VmId};
use glap_dcsim::{ConsolidationPolicy, NetworkModel, RoundCtx, SimRng};

/// How the dynamic upper threshold is estimated from the CPU history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdMethod {
    /// `T_u = 1 − s · MAD(history)` — the estimator the GLAP evaluation
    /// configures (s = 2.5).
    #[default]
    Mad,
    /// `T_u = 1 − s · IQR(history)` with s = 1.5 (Beloglazov & Buyya's
    /// IQR variant).
    Iqr,
    /// Robust local regression: fit a trend line to the recent history
    /// and project one round ahead; `T_u = 1 − s · max(0, predicted
    /// growth)` — overload is anticipated when utilization trends upward.
    LocalRegression,
}

/// Configuration of the PABFD baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PabfdConfig {
    /// Dynamic-threshold estimator.
    pub method: ThresholdMethod,
    /// MAD safety multiplier `s` (Beloglazov & Buyya use 2.5).
    pub mad_scale: f64,
    /// Static fallback upper threshold while history is short.
    pub fallback_upper: f64,
    /// Static lower threshold for evacuation.
    pub lower: f64,
    /// CPU-history window length in rounds.
    pub history: usize,
    /// Upper threshold floor (prevents degenerate `T_u ≤ lower`).
    pub upper_floor: f64,
}

impl Default for PabfdConfig {
    fn default() -> Self {
        PabfdConfig {
            method: ThresholdMethod::default(),
            mad_scale: 2.5,
            fallback_upper: 0.8,
            lower: 0.3,
            history: 30,
            upper_floor: 0.4,
        }
    }
}

/// The PABFD centralized policy.
#[derive(Debug, Clone)]
pub struct PabfdPolicy {
    cfg: PabfdConfig,
    /// Ring buffers of per-host CPU utilization history.
    history: Vec<Vec<f64>>,
}

/// Median of a slice (copied and sorted internally).
fn median(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Median absolute deviation.
fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Inter-quartile range (linear-interpolated quartiles).
fn iqr(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| -> f64 {
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] * (hi as f64 - pos) + v[hi] * (pos - lo as f64)
        }
    };
    q(0.75) - q(0.25)
}

/// Least-squares slope of the history (utilization per round); the local
/// regression estimator projects this trend forward.
fn trend_slope(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return 0.0;
    }
    let mean_t = (n - 1.0) / 2.0;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &x) in xs.iter().enumerate() {
        let dt = t as f64 - mean_t;
        num += dt * (x - mean_x);
        den += dt * dt;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

impl PabfdPolicy {
    /// Builds the policy.
    pub fn new(cfg: PabfdConfig) -> Self {
        PabfdPolicy {
            cfg,
            history: Vec::new(),
        }
    }

    /// The dynamic upper threshold of one host.
    fn upper_threshold(&self, pm: PmId) -> f64 {
        let h = &self.history[pm.index()];
        if h.len() < 10 {
            return self.cfg.fallback_upper;
        }
        let spread = match self.cfg.method {
            ThresholdMethod::Mad => self.cfg.mad_scale * mad(h),
            ThresholdMethod::Iqr => 1.5 * iqr(h),
            ThresholdMethod::LocalRegression => {
                // Project the trend over a migration-decision horizon of
                // ~10 rounds; only upward trends reduce the threshold.
                self.cfg.mad_scale * (trend_slope(h) * 10.0).max(0.0)
            }
        };
        (1.0 - spread).clamp(self.cfg.upper_floor, 1.0)
    }

    /// Power-aware best-fit-decreasing placement of `vms`. Returns VMs that
    /// could not be placed (after considering waking sleeping hosts).
    /// Hosts the central controller cannot reach (`net` says down) are
    /// invisible: neither placement candidates nor wake targets.
    fn place_all(
        &self,
        dc: &mut DataCenter,
        net: &NetworkModel,
        mut vms: Vec<VmId>,
        exclude: &[PmId],
    ) -> Vec<VmId> {
        // Sort by CPU demand decreasing (the "BFD" part).
        vms.sort_by(|&a, &b| {
            dc.vm(b)
                .current
                .cpu()
                .partial_cmp(&dc.vm(a).current.cpu())
                .expect("finite")
        });
        let mut unplaced = Vec::new();
        for vm in vms {
            let demand = dc.vm(vm).current;
            let src = dc.vm(vm).host;
            let mut best: Option<(PmId, f64, f64)> = None; // (pm, power_inc, free_after)
            for pm in dc.active_pm_ids().collect::<Vec<_>>() {
                if Some(pm) == src || exclude.contains(&pm) || !net.is_up(pm.0) {
                    continue;
                }
                let after = dc.pm(pm).demand() + demand;
                let t_u = self.upper_threshold(pm);
                if !after.fits_within(Resources::new(t_u, 1.0)) {
                    continue;
                }
                let u = dc.pm(pm).utilization().cpu();
                let power_inc =
                    dc.power_model().watts((u + demand.cpu()).min(1.0)) - dc.power_model().watts(u);
                let free_after = (Resources::FULL - after).total();
                let better = match best {
                    None => true,
                    Some((_, bp, bf)) => {
                        power_inc < bp - 1e-12
                            || ((power_inc - bp).abs() <= 1e-12 && free_after < bf)
                    }
                };
                if better {
                    best = Some((pm, power_inc, free_after));
                }
            }
            match best {
                Some((pm, _, _)) => {
                    dc.migrate(vm, pm).expect("chosen host is active");
                }
                None => {
                    // Wake a sleeping (and reachable) host if any.
                    let sleeping = dc
                        .pms()
                        .find(|p| !p.is_active() && net.is_up(p.id().0))
                        .map(|p| p.id());
                    if let Some(pm) = sleeping {
                        dc.wake(pm);
                        dc.migrate(vm, pm).expect("woken host is active");
                    } else {
                        unplaced.push(vm);
                    }
                }
            }
        }
        unplaced
    }
}

impl ConsolidationPolicy for PabfdPolicy {
    fn name(&self) -> &'static str {
        "pabfd"
    }

    fn init(&mut self, dc: &mut DataCenter, _rng: &mut SimRng) {
        self.history = vec![Vec::with_capacity(self.cfg.history); dc.n_pms()];
    }

    fn round(&mut self, ctx: &mut RoundCtx<'_>) {
        let dc = &mut *ctx.dc;
        let net = &*ctx.net;
        // 1. Record CPU history of active hosts (the central monitor;
        //    unreachable hosts report nothing this round).
        for pm in dc.pms() {
            if pm.is_active() && net.is_up(pm.id().0) {
                let h = &mut self.history[pm.id().index()];
                if h.len() == self.cfg.history {
                    h.remove(0);
                }
                h.push(pm.utilization().cpu());
            }
        }

        // 2. Over-threshold hosts: evict by Minimum Migration Time (least
        //    memory) until below the dynamic threshold.
        let mut to_place: Vec<VmId> = Vec::new();
        for pm in dc.active_pm_ids().collect::<Vec<_>>() {
            if !net.is_up(pm.0) {
                continue; // the controller cannot command a crashed host
            }
            let t_u = self.upper_threshold(pm);
            let mut projected = dc.pm(pm).demand().cpu();
            if projected <= t_u {
                continue;
            }
            let mut vms: Vec<VmId> = dc.pm(pm).vms().to_vec();
            // MMT: smallest memory footprint first (fastest migration).
            vms.sort_by(|&a, &b| {
                dc.vm(a)
                    .mem_demand_mb()
                    .partial_cmp(&dc.vm(b).mem_demand_mb())
                    .expect("finite")
            });
            for vm in vms {
                if projected <= t_u {
                    break;
                }
                projected -= dc.vm(vm).current.cpu();
                to_place.push(vm);
            }
        }
        let unplaced = self.place_all(dc, net, to_place, &[]);
        debug_assert!(unplaced.iter().all(|vm| dc.vm(*vm).host.is_some()));

        // 3. Under-utilized hosts: try to evacuate entirely. Hosts are
        //    processed least-loaded first; their VMs may not land on other
        //    evacuation sources.
        let mut under: Vec<PmId> = dc
            .active_pm_ids()
            .filter(|&pm| {
                net.is_up(pm.0)
                    && !dc.pm(pm).is_empty()
                    && dc.pm(pm).utilization().cpu() < self.cfg.lower
            })
            .collect();
        under.sort_by(|&a, &b| {
            dc.pm(a)
                .utilization()
                .cpu()
                .partial_cmp(&dc.pm(b).utilization().cpu())
                .expect("finite")
        });
        for pm in under.clone() {
            let vms: Vec<VmId> = dc.pm(pm).vms().to_vec();
            let failed = self.place_all(dc, net, vms, &under);
            // If anything failed, those VMs stayed put (place_all does not
            // move what it cannot place) and the host stays on.
            let _ = failed;
            dc.sleep_if_empty(pm);
        }

        // 4. Switch off emptied (and reachable) hosts.
        let empties: Vec<PmId> = dc
            .pms()
            .filter(|p| p.is_active() && p.is_empty() && net.is_up(p.id().0))
            .map(|p| p.id())
            .collect();
        for pm in empties {
            dc.sleep_if_empty(pm);
        }
    }

    /// PABFD's only mutable state is the per-host CPU history the dynamic
    /// thresholds are estimated from; sample order matters (local
    /// regression fits a trend line), so the windows are saved verbatim.
    fn save_state(&self, w: &mut glap_snapshot::Writer) {
        w.put_usize(self.history.len());
        for h in &self.history {
            w.put_f64_slice(h);
        }
    }

    /// Restores into a freshly built policy (same `PabfdConfig`),
    /// replacing [`ConsolidationPolicy::init`] on resume.
    fn restore_state(
        &mut self,
        r: &mut glap_snapshot::Reader<'_>,
    ) -> Result<(), glap_snapshot::SnapshotError> {
        let n = r.get_usize()?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            let h = r.get_f64_slice()?;
            if h.len() > self.cfg.history {
                return Err(glap_snapshot::SnapshotError::Corrupt(format!(
                    "history window of {} samples exceeds the configured {}",
                    h.len(),
                    self.cfg.history
                )));
            }
            history.push(h);
        }
        self.history = history;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, VmSpec};
    use glap_dcsim::{run_simulation, stream_rng, Stream};

    fn setup(n_pms: usize, ratio: usize, seed: u64) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.random_placement(&mut stream_rng(seed, Stream::Placement));
        dc
    }

    #[test]
    fn median_and_mad_are_correct() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // MAD of [1,2,3,4,100]: median 3, deviations [2,1,0,1,97] → 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 100.0]), 1.0);
    }

    #[test]
    fn iqr_matches_hand_computation() {
        // [1..8]: Q1 = 2.75, Q3 = 6.25 → IQR = 3.5
        let xs: Vec<f64> = (1..=8).map(f64::from).collect();
        assert!((iqr(&xs) - 3.5).abs() < 1e-9);
        assert_eq!(iqr(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn trend_slope_detects_growth() {
        let rising: Vec<f64> = (0..20).map(|i| 0.3 + 0.01 * i as f64).collect();
        assert!((trend_slope(&rising) - 0.01).abs() < 1e-9);
        let flat = vec![0.5; 20];
        assert_eq!(trend_slope(&flat), 0.0);
        let falling: Vec<f64> = (0..20).map(|i| 0.8 - 0.01 * i as f64).collect();
        assert!(trend_slope(&falling) < 0.0);
    }

    #[test]
    fn estimators_rank_thresholds_sensibly() {
        let noisy: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        let rising: Vec<f64> = (0..30).map(|i| 0.2 + 0.02 * i as f64).collect();
        let build = |method: ThresholdMethod, hist: &[f64]| {
            let mut p = PabfdPolicy::new(PabfdConfig {
                method,
                ..PabfdConfig::default()
            });
            p.history = vec![hist.to_vec()];
            p.upper_threshold(PmId(0))
        };
        // Noisy history → MAD and IQR both cut the threshold hard.
        assert!(build(ThresholdMethod::Mad, &noisy) < 0.5);
        assert!(build(ThresholdMethod::Iqr, &noisy) < 0.5);
        // Local regression ignores symmetric noise (no trend)…
        assert!(build(ThresholdMethod::LocalRegression, &noisy) > 0.9);
        // …but reacts to a rising trend.
        assert!(build(ThresholdMethod::LocalRegression, &rising) < 0.9);
    }

    #[test]
    fn threshold_uses_fallback_with_short_history() {
        let mut p = PabfdPolicy::new(PabfdConfig::default());
        p.history = vec![vec![0.5; 3]];
        assert_eq!(p.upper_threshold(PmId(0)), 0.8);
    }

    #[test]
    fn stable_history_gives_high_threshold_noisy_gives_low() {
        let mut p = PabfdPolicy::new(PabfdConfig::default());
        let stable: Vec<f64> = (0..30).map(|_| 0.5).collect();
        let noisy: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        p.history = vec![stable, noisy];
        let t_stable = p.upper_threshold(PmId(0));
        let t_noisy = p.upper_threshold(PmId(1));
        assert!(t_stable > t_noisy, "{t_stable} vs {t_noisy}");
        assert!((t_stable - 1.0).abs() < 1e-9); // zero MAD → 1.0
    }

    #[test]
    fn consolidates_under_light_load() {
        let mut dc = setup(20, 2, 1);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.3);
        let mut policy = PabfdPolicy::new(PabfdConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 40, 1);
        assert!(dc.active_pm_count() < 20);
        dc.check_invariants().unwrap();
    }

    #[test]
    fn relieves_overload_via_replacement() {
        let mut dc = setup(6, 6, 2);
        let mut trace = |_: VmId, r: u64| {
            if r == 0 {
                Resources::splat(1.0)
            } else {
                Resources::splat(0.15)
            }
        };
        let mut policy = PabfdPolicy::new(PabfdConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, 2);
        assert_eq!(dc.overloaded_pm_count(), 0);
    }

    #[test]
    fn migrates_continuously_unlike_gossip_protocols() {
        // The paper observes PABFD's cumulative migrations grow almost
        // linearly; at minimum it must keep migrating after the initial
        // consolidation settles.
        let mut dc = setup(12, 3, 3);
        let mut trace = |vm: VmId, r: u64| {
            let x = 0.35 + 0.3 * ((r as f64 / 6.0) + f64::from(vm.0)).sin();
            Resources::splat(x.clamp(0.05, 0.95))
        };
        let mut policy = PabfdPolicy::new(PabfdConfig::default());
        struct Tail(u64);
        impl glap_dcsim::Observer for Tail {
            fn on_round_end(&mut self, round: u64, dc: &mut DataCenter) {
                if round >= 30 {
                    self.0 += dc.take_migrations().len() as u64;
                }
            }
        }
        let mut tail = Tail(0);
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [&mut tail], 60, 3);
        assert!(tail.0 > 0, "PABFD stopped migrating after warm-up");
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut dc = setup(10, 3, 5);
            let mut trace =
                |vm: VmId, r: u64| Resources::splat(0.2 + 0.05 * ((vm.0 + r as u32) % 4) as f64);
            let mut policy = PabfdPolicy::new(PabfdConfig::default());
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 20, 5);
            (dc.active_pm_count(), dc.total_migrations())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checkpoint_round_trips_history_and_rejects_oversized_windows() {
        use glap_snapshot::{Reader, SnapshotError, Writer};
        let mut dc = setup(10, 3, 5);
        let mut trace =
            |vm: VmId, r: u64| Resources::splat(0.2 + 0.05 * ((vm.0 + r as u32) % 4) as f64);
        let mut policy = PabfdPolicy::new(PabfdConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 12, 5);

        let mut w = Writer::new();
        policy.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut twin = PabfdPolicy::new(PabfdConfig::default());
        twin.restore_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(policy.history, twin.history);
        let mut w2 = Writer::new();
        twin.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // A snapshot whose window exceeds the configured length is
        // rejected, not silently truncated.
        let mut small = PabfdPolicy::new(PabfdConfig {
            history: 5,
            ..PabfdConfig::default()
        });
        assert!(matches!(
            small.restore_state(&mut Reader::new(&bytes)),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
