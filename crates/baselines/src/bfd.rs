//! Offline Best-Fit-Decreasing packing — the Figure 6 baseline.
//!
//! The GLAP paper computes "BFD (Best Fit Decreasing) using the VMs
//! resource utilization of the last round to determine a baseline packing
//! without producing any SLA violation": the minimal number of active PMs
//! an omniscient offline packer would need. Consolidation algorithms that
//! go *below* this line are necessarily overloading PMs.

use glap_cluster::{DataCenter, Resources};

/// Packs the given demand vectors into the fewest bins of capacity 1.0 per
/// resource using best-fit-decreasing (decreasing by total demand; best =
/// tightest remaining capacity that still fits). Returns the bin count.
pub fn bfd_pack(demands: &[Resources]) -> usize {
    let mut items: Vec<Resources> = demands.to_vec();
    items.sort_by(|a, b| b.total().partial_cmp(&a.total()).expect("finite demands"));
    let mut bins: Vec<Resources> = Vec::new(); // current load per bin
    for item in items {
        let mut best: Option<(usize, f64)> = None; // (bin, free_after)
        for (i, load) in bins.iter().enumerate() {
            let after = *load + item;
            if after.fits_within(Resources::FULL) {
                let free = (Resources::FULL - after).total();
                if best.is_none_or(|(_, bf)| free < bf) {
                    best = Some((i, free));
                }
            }
        }
        match best {
            Some((i, _)) => bins[i] += item,
            None => bins.push(item),
        }
    }
    bins.len()
}

/// The paper's baseline: BFD over the current demands of all placed VMs in
/// a data center.
pub fn bfd_baseline(dc: &DataCenter) -> usize {
    let demands: Vec<Resources> = dc
        .vms()
        .filter(|v| v.host.is_some())
        .map(|v| v.current)
        .collect();
    bfd_pack(&demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, VmId, VmSpec};
    use glap_dcsim::{stream_rng, Stream};

    #[test]
    fn empty_input_needs_no_bins() {
        assert_eq!(bfd_pack(&[]), 0);
    }

    #[test]
    fn single_item_single_bin() {
        assert_eq!(bfd_pack(&[Resources::new(0.5, 0.5)]), 1);
    }

    #[test]
    fn perfect_halves_pack_in_pairs() {
        let items = vec![Resources::splat(0.5); 6];
        assert_eq!(bfd_pack(&items), 3);
    }

    #[test]
    fn oversized_pairs_do_not_share() {
        let items = vec![Resources::splat(0.6); 4];
        assert_eq!(bfd_pack(&items), 4);
    }

    #[test]
    fn respects_both_dimensions() {
        // CPU fits but memory doesn't.
        let items = vec![Resources::new(0.2, 0.9), Resources::new(0.2, 0.9)];
        assert_eq!(bfd_pack(&items), 2);
    }

    #[test]
    fn bfd_is_no_worse_than_first_fit_on_classic_case() {
        // Classic example where decreasing order helps: {0.7, 0.6, 0.4, 0.3}
        // packs into 2 bins (0.7+0.3, 0.6+0.4).
        let items = [0.7, 0.6, 0.4, 0.3].map(|x| Resources::new(x, 0.1));
        assert_eq!(bfd_pack(&items), 2);
    }

    #[test]
    fn baseline_over_datacenter_counts_placed_vms() {
        let mut dc = DataCenter::new(DataCenterConfig::paper(10));
        for _ in 0..20 {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.random_placement(&mut stream_rng(1, Stream::Placement));
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        dc.step(&mut src);
        let bins = bfd_baseline(&dc);
        // 20 VMs at 50%: each ≈ (0.094, 0.075) → ~10 per bin → 2-3 bins.
        assert!((2..=4).contains(&bins), "bins {bins}");
    }

    #[test]
    fn baseline_never_exceeds_vm_count() {
        let items = vec![Resources::splat(0.9); 7];
        assert_eq!(bfd_pack(&items), 7);
    }
}
