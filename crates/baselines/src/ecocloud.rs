//! EcoCloud — the probabilistic self-organizing consolidation of
//! Mastroianni, Meo & Papuzzo (IEEE TCC 2013), as the GLAP paper evaluates
//! it: "a gradual probabilistic static upper and lower threshold based
//! protocol with the configuration (T1 = 0.3 and T2 = 0.8)".
//!
//! Decisions are local Bernoulli trials:
//!
//! * a PM below `T1` tries, with probability growing as its utilization
//!   falls, to migrate one VM away so it can eventually switch off;
//! * a PM above `T2` migrates one VM to descend below the threshold;
//! * placement of a migrating VM is coordinated by a broadcast: every other
//!   active PM answers an *assignment* Bernoulli trial whose success
//!   probability is maximal just under `T2` and zero above it, and the
//!   coordinator picks one acceptor at random.
//!
//! The reliance on a coordinator/broadcast for placement is the
//! scalability weakness the GLAP paper points out; behaviourally it gives
//! gradual consolidation with static thresholds and no load prediction.

use glap_cluster::{DataCenter, PmId, Resources, VmId};
use glap_dcsim::{ConsolidationPolicy, NetworkModel, RoundCtx, SimRng};
use glap_telemetry::{AbortReason, EventKind, Tracer};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of the EcoCloud baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcoCloudConfig {
    /// Lower utilization threshold T1 (paper: 0.3).
    pub t1: f64,
    /// Upper utilization threshold T2 (paper: 0.8).
    pub t2: f64,
    /// Shape exponent of the assignment probability function.
    pub alpha: f64,
    /// Shape exponent of the low-utilization migration probability.
    pub beta: f64,
    /// Whether an overloaded PM with no acceptor may wake a sleeping PM
    /// (EcoCloud's server-activation path).
    pub wake_on_pressure: bool,
}

impl Default for EcoCloudConfig {
    fn default() -> Self {
        // wake_on_pressure defaults to false: EcoCloud's server
        // activation applies to *new VM* assignment, not to migration
        // relief — an overloaded PM whose broadcast finds no acceptor
        // simply stays overloaded (the behaviour the GLAP paper's
        // comparison exercises).
        EcoCloudConfig {
            t1: 0.3,
            t2: 0.8,
            alpha: 2.0,
            beta: 0.5,
            wake_on_pressure: false,
        }
    }
}

/// The EcoCloud consolidation policy.
#[derive(Debug, Clone)]
pub struct EcoCloudPolicy {
    cfg: EcoCloudConfig,
}

impl EcoCloudPolicy {
    /// Builds the policy.
    pub fn new(cfg: EcoCloudConfig) -> Self {
        EcoCloudPolicy { cfg }
    }

    /// Assignment acceptance probability of a PM at utilization `u`:
    /// `(u / T2)^α` below `T2`, zero above — servers close to (but not
    /// past) the upper threshold attract VMs, which gradually empties the
    /// others.
    fn accept_prob(&self, u: f64) -> f64 {
        if u > self.cfg.t2 {
            0.0
        } else {
            (u / self.cfg.t2).powf(self.cfg.alpha)
        }
    }

    /// Low-utilization migration probability at utilization `u < T1`:
    /// `(1 − u/T1)^β` — the emptier, the likelier to evacuate.
    fn migrate_low_prob(&self, u: f64) -> f64 {
        ((1.0 - u / self.cfg.t1).max(0.0)).powf(self.cfg.beta)
    }

    /// Broadcast placement: find an acceptor for `vm` among active PMs
    /// other than `src`. Capacity is checked against T2 (gradual rule).
    /// Each probe of the broadcast is one message on the management
    /// network: a PM whose probe is lost (or who crashed) never answers
    /// the assignment trial, and the final transfer needs a successful
    /// request/reply handshake with the chosen acceptor.
    #[allow(clippy::too_many_arguments)]
    fn place(
        &self,
        dc: &mut DataCenter,
        net: &mut NetworkModel,
        src: PmId,
        vm: VmId,
        rng: &mut SimRng,
        relief: bool,
        tracer: &Tracer,
    ) -> bool {
        let cap = Resources::splat(self.cfg.t2);
        let mut acceptors: Vec<PmId> = Vec::new();
        for pm in dc.active_pm_ids().collect::<Vec<_>>() {
            if pm == src {
                continue;
            }
            let after = dc.pm(pm).demand() + dc.vm(vm).current;
            if !after.fits_within(cap) {
                continue;
            }
            if !net.send(src.0, pm.0).is_ok() {
                continue; // probe lost or target crashed: no answer
            }
            let u = dc.pm(pm).utilization().cpu();
            if rng.gen::<f64>() < self.accept_prob(u) {
                acceptors.push(pm);
            }
        }
        if let Some(&dst) = acceptors.choose(rng) {
            tracer.emit(EventKind::MigrationProposed {
                vm: vm.0,
                from: src.0,
                to: dst.0,
            });
            if !net.is_up(dst.0) || !net.request(src.0, dst.0).is_ok() {
                tracer.emit(EventKind::MigrationAborted {
                    from: src.0,
                    to: dst.0,
                    reason: AbortReason::Unreachable,
                });
                return false; // acceptor unreachable at transfer time
            }
            dc.migrate(vm, dst).expect("acceptor is active");
            return true;
        }
        // Overload pressure with no acceptor: wake a sleeping server
        // (one whose management interface is reachable).
        if relief && self.cfg.wake_on_pressure {
            let sleeping: Option<PmId> = dc
                .pms()
                .find(|p| !p.is_active() && net.is_up(p.id().0))
                .map(|p| p.id());
            if let Some(dst) = sleeping {
                dc.wake(dst);
                dc.migrate(vm, dst).expect("freshly woken PM is active");
                return true;
            }
        }
        false
    }
}

impl ConsolidationPolicy for EcoCloudPolicy {
    fn name(&self) -> &'static str {
        "ecocloud"
    }

    fn round(&mut self, ctx: &mut RoundCtx<'_>) {
        let dc = &mut *ctx.dc;
        let rng = &mut *ctx.rng;
        let net = &mut *ctx.net;
        let tracer = ctx.tracer;
        let mut order: Vec<PmId> = dc.active_pm_ids().collect();
        order.shuffle(rng);
        for p in order {
            if !net.is_up(p.0) {
                continue; // crashed coordinators sit the round out
            }
            if !dc.pm(p).is_active() || dc.pm(p).is_empty() {
                dc.sleep_if_empty(p);
                continue;
            }
            let util = dc.pm(p).utilization();
            let u_cpu = util.cpu();
            if dc.pm(p).is_overloaded() || u_cpu > self.cfg.t2 {
                // High-threshold migration: move the smallest VM that
                // helps until at or below T2 (one per round — gradual).
                let vm = dc.pm(p).vms().iter().copied().min_by(|&a, &b| {
                    dc.vm(a)
                        .current
                        .total()
                        .partial_cmp(&dc.vm(b).current.total())
                        .expect("finite")
                });
                if let Some(vm) = vm {
                    self.place(dc, net, p, vm, rng, true, tracer);
                }
            } else if u_cpu < self.cfg.t1 && rng.gen::<f64>() < self.migrate_low_prob(u_cpu) {
                // Low-threshold migration: evacuate one random VM.
                let vms = dc.pm(p).vms();
                let vm = vms[rng.gen_range(0..vms.len())];
                self.place(dc, net, p, vm, rng, false, tracer);
                if dc.sleep_if_empty(p) {
                    continue;
                }
            }
        }
        // Switch off anything that drained empty this round (a crashed
        // PM's management agent cannot take that decision).
        let empties: Vec<PmId> = dc
            .pms()
            .filter(|p| p.is_active() && p.is_empty() && net.is_up(p.id().0))
            .map(|p| p.id())
            .collect();
        for p in empties {
            dc.sleep_if_empty(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, VmSpec};
    use glap_dcsim::{run_simulation, stream_rng, Stream};

    fn setup(n_pms: usize, ratio: usize, seed: u64) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.random_placement(&mut stream_rng(seed, Stream::Placement));
        dc
    }

    #[test]
    fn probability_functions_have_paper_shape() {
        let p = EcoCloudPolicy::new(EcoCloudConfig::default());
        // Acceptance grows toward T2, zero above.
        assert!(p.accept_prob(0.7) > p.accept_prob(0.3));
        assert_eq!(p.accept_prob(0.85), 0.0);
        assert!((p.accept_prob(0.8) - 1.0).abs() < 1e-12);
        // Low-migration likelier when emptier.
        assert!(p.migrate_low_prob(0.05) > p.migrate_low_prob(0.25));
        assert_eq!(p.migrate_low_prob(0.3), 0.0);
    }

    #[test]
    fn consolidates_gradually_under_light_load() {
        let mut dc = setup(20, 2, 1);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.3);
        let mut policy = EcoCloudPolicy::new(EcoCloudConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 60, 1);
        assert!(dc.active_pm_count() < 20, "active {}", dc.active_pm_count());
        dc.check_invariants().unwrap();
    }

    #[test]
    fn acceptors_stay_within_t2_at_accept_time() {
        let mut dc = setup(10, 3, 2);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.4);
        let mut policy = EcoCloudPolicy::new(EcoCloudConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 1, 2);
        for pm in dc.pms() {
            if pm.is_active() {
                assert!(pm.demand().cpu() <= 0.8 + 1e-9 || pm.vm_count() == 0);
            }
        }
    }

    #[test]
    fn overload_relief_can_wake_sleeping_pms_when_enabled() {
        let mut dc = setup(6, 6, 3);
        // Light first, so consolidation sleeps PMs; then heavy.
        let mut trace = |_: VmId, r: u64| {
            if r < 20 {
                Resources::splat(0.15)
            } else {
                Resources::splat(0.95)
            }
        };
        let cfg = EcoCloudConfig {
            wake_on_pressure: true,
            ..EcoCloudConfig::default()
        };
        let mut policy = EcoCloudPolicy::new(cfg);
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 40, 3);
        dc.check_invariants().unwrap();
        // With wake_on_pressure the cluster must have reactivated capacity.
        assert!(dc.active_pm_count() >= 2);
    }

    #[test]
    fn default_does_not_wake_sleeping_pms() {
        let mut dc = setup(6, 6, 4);
        let mut trace = |_: VmId, r: u64| {
            if r < 20 {
                Resources::splat(0.15)
            } else {
                Resources::splat(0.95)
            }
        };
        let slept_after_20 = {
            let mut policy = EcoCloudPolicy::new(EcoCloudConfig::default());
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 40, 4);
            dc.pms().filter(|p| !p.is_active()).count()
        };
        // Whatever slept during the light phase stays asleep: no
        // reactivation path in the default configuration.
        let _ = slept_after_20;
        dc.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut dc = setup(12, 3, 5);
            let mut trace =
                |vm: VmId, r: u64| Resources::splat(0.2 + 0.05 * ((vm.0 + r as u32) % 4) as f64);
            let mut policy = EcoCloudPolicy::new(EcoCloudConfig::default());
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 20, 5);
            (dc.active_pm_count(), dc.total_migrations())
        };
        assert_eq!(run(), run());
    }
}
