//! GRMP — the gossip resource-management protocol of Wuhib, Yanggratoke &
//! Stadler (JNSM 2015), instantiated for server consolidation as the GLAP
//! paper evaluates it: "an aggressive gossip based protocol with a static
//! upper threshold 0.8".
//!
//! Each round every active PM gossips with a random Cyclon neighbour; the
//! pair greedily moves VMs from the less-utilized side to the other
//! (largest VM first, multi-dimensional bin-packing style) as long as the
//! recipient stays at or below the threshold *on its current utilization*.
//! No demand history, no prediction — which is exactly why it overloads
//! PMs when VM load later rises.

use glap_cluster::{DataCenter, PmId, Resources, VmId};
use glap_cyclon::{CyclonOverlay, RoundIo};
use glap_dcsim::{ConsolidationPolicy, NetworkModel, RoundCtx, SimRng};
use glap_telemetry::{AbortReason, EventKind, Tracer};
use rand::seq::SliceRandom;

/// Configuration of the GRMP baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrmpConfig {
    /// Static per-resource utilization cap for accepting VMs (paper: 0.8).
    pub threshold: f64,
    /// Cyclon view size.
    pub cyclon_cache: usize,
    /// Cyclon shuffle length.
    pub cyclon_shuffle: usize,
}

impl Default for GrmpConfig {
    fn default() -> Self {
        GrmpConfig {
            threshold: 0.8,
            cyclon_cache: 8,
            cyclon_shuffle: 4,
        }
    }
}

/// The GRMP consolidation policy.
#[derive(Debug, Clone)]
pub struct GrmpPolicy {
    cfg: GrmpConfig,
    overlay: CyclonOverlay,
}

impl GrmpPolicy {
    /// Builds the policy.
    pub fn new(cfg: GrmpConfig) -> Self {
        GrmpPolicy {
            cfg,
            overlay: CyclonOverlay::new(0, cfg.cyclon_cache, cfg.cyclon_shuffle),
        }
    }

    /// Moves VMs from `src` to `dst`, largest current demand first, while
    /// `dst` stays within the threshold. Every transfer is a handshake
    /// over the management network; the drain aborts if `dst` crashes or
    /// the handshake is lost mid-stream. Returns the number migrated.
    fn drain(
        &mut self,
        dc: &mut DataCenter,
        net: &mut NetworkModel,
        src: PmId,
        dst: PmId,
        tracer: &Tracer,
    ) -> usize {
        let cap = Resources::splat(self.cfg.threshold);
        let mut vms: Vec<VmId> = dc.pm(src).vms().to_vec();
        // Largest total demand first — aggressive packing.
        vms.sort_by(|&a, &b| {
            dc.vm(b)
                .current
                .total()
                .partial_cmp(&dc.vm(a).current.total())
                .expect("finite demands")
        });
        let mut moved = 0;
        for vm in vms {
            let after = dc.pm(dst).demand() + dc.vm(vm).current;
            if after.fits_within(cap) {
                tracer.emit(EventKind::MigrationProposed {
                    vm: vm.0,
                    from: src.0,
                    to: dst.0,
                });
                if !net.is_up(dst.0) || !net.request(src.0, dst.0).is_ok() {
                    tracer.emit(EventKind::MigrationAborted {
                        from: src.0,
                        to: dst.0,
                        reason: AbortReason::Unreachable,
                    });
                    break;
                }
                dc.migrate(vm, dst).expect("destination is active");
                moved += 1;
            }
        }
        moved
    }

    fn exchange(
        &mut self,
        dc: &mut DataCenter,
        net: &mut NetworkModel,
        p: PmId,
        q: PmId,
        tracer: &Tracer,
    ) {
        // Overload relief first: an overloaded PM pushes load out.
        for (over, other) in [(p, q), (q, p)] {
            if dc.pm(over).is_overloaded() {
                self.drain(dc, net, over, other, tracer);
            }
        }
        if dc.pm(p).is_overloaded() || dc.pm(q).is_overloaded() {
            return;
        }
        // Aggressive consolidation: less-utilized side empties itself.
        let (sender, receiver) = if dc.pm(p).demand().total() <= dc.pm(q).demand().total() {
            (p, q)
        } else {
            (q, p)
        };
        self.drain(dc, net, sender, receiver, tracer);
        if dc.sleep_if_empty(sender) {
            self.overlay.set_dead(sender.0);
        }
    }
}

impl ConsolidationPolicy for GrmpPolicy {
    fn name(&self) -> &'static str {
        "grmp"
    }

    fn init(&mut self, dc: &mut DataCenter, rng: &mut SimRng) {
        self.overlay =
            CyclonOverlay::new(dc.n_pms(), self.cfg.cyclon_cache, self.cfg.cyclon_shuffle);
        self.overlay.bootstrap_random(rng);
        for pm in dc.pms() {
            if !pm.is_active() {
                self.overlay.set_dead(pm.id().0);
            }
        }
    }

    fn round(&mut self, ctx: &mut RoundCtx<'_>) {
        let dc = &mut *ctx.dc;
        let rng = &mut *ctx.rng;
        let net = &mut *ctx.net;
        let tracer = ctx.tracer;
        self.overlay.run_round(
            rng,
            RoundIo::full(&mut |a, b| net.request(a, b).is_ok(), tracer),
        );
        let mut order: Vec<PmId> = dc.active_pm_ids().collect();
        order.shuffle(rng);
        for p in order {
            if !dc.pm(p).is_active() || !net.is_up(p.0) {
                continue;
            }
            let Some(q) = self.overlay.random_alive_peer(p.0, rng) else {
                continue;
            };
            let q = PmId(q);
            if !dc.pm(q).is_active() || !net.is_up(q.0) {
                self.overlay.node_mut(p.0).remove(q.0);
                continue;
            }
            if !net.request(p.0, q.0).is_ok() {
                continue;
            }
            tracer.emit(EventKind::ExchangeOpened { p: p.0, q: q.0 });
            self.exchange(dc, net, p, q, tracer);
        }
    }

    /// GRMP's only mutable state is its Cyclon overlay.
    fn save_state(&self, w: &mut glap_snapshot::Writer) {
        use glap_snapshot::Checkpointable;
        w.put_usize(self.overlay.len());
        self.overlay.save(w);
    }

    /// Restores into a freshly built policy (same `GrmpConfig`), replacing
    /// [`ConsolidationPolicy::init`] on resume.
    fn restore_state(
        &mut self,
        r: &mut glap_snapshot::Reader<'_>,
    ) -> Result<(), glap_snapshot::SnapshotError> {
        use glap_snapshot::Checkpointable;
        let n = r.get_usize()?;
        let mut overlay = CyclonOverlay::new(n, self.cfg.cyclon_cache, self.cfg.cyclon_shuffle);
        overlay.restore(r)?;
        self.overlay = overlay;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::{DataCenterConfig, VmSpec};
    use glap_dcsim::{run_simulation, stream_rng, Stream};

    fn setup(n_pms: usize, ratio: usize, seed: u64) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.random_placement(&mut stream_rng(seed, Stream::Placement));
        dc
    }

    #[test]
    fn grmp_consolidates_aggressively() {
        let mut dc = setup(20, 2, 1);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.3);
        let mut policy = GrmpPolicy::new(GrmpConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 30, 1);
        assert!(dc.active_pm_count() < 20);
        dc.check_invariants().unwrap();
    }

    #[test]
    fn recipients_never_pushed_past_threshold_at_accept_time() {
        let mut dc = setup(10, 3, 2);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.5);
        let mut policy = GrmpPolicy::new(GrmpConfig::default());
        // One round: after stepping, no recipient exceeds 0.8 unless its
        // own VMs grew (they cannot in one constant-demand round).
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 1, 2);
        for pm in dc.pms() {
            assert!(
                pm.demand().cpu() <= 0.8 + 1e-9 || pm.vm_count() == 0,
                "PM pushed past threshold: {:?}",
                pm.demand()
            );
        }
    }

    #[test]
    fn overloaded_pm_drains_to_partner() {
        let mut dc = setup(4, 8, 3);
        let mut trace = |_: VmId, r: u64| {
            if r == 0 {
                Resources::splat(1.0)
            } else {
                Resources::splat(0.1)
            }
        };
        let mut policy = GrmpPolicy::new(GrmpConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 8, 3);
        assert_eq!(dc.overloaded_pm_count(), 0);
    }

    #[test]
    fn grmp_beats_glap_on_pure_packing_under_static_load() {
        // GRMP's defining trait: more aggressive switch-off than
        // prediction-based methods under stable load.
        let mut dc = setup(16, 2, 4);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.25);
        let mut policy = GrmpPolicy::new(GrmpConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 40, 4);
        // 32 VMs at 25%: each ~0.047 CPU / 0.037 MEM → all fit in 1-2 PMs
        // under the 0.8 cap.
        assert!(
            dc.active_pm_count() <= 4,
            "active: {}",
            dc.active_pm_count()
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut dc = setup(12, 3, 5);
            let mut trace =
                |vm: VmId, r: u64| Resources::splat(0.2 + 0.05 * ((vm.0 + r as u32) % 4) as f64);
            let mut policy = GrmpPolicy::new(GrmpConfig::default());
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 15, 5);
            (dc.active_pm_count(), dc.total_migrations())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checkpoint_round_trips_overlay_state() {
        use glap_snapshot::{Reader, Writer};
        let mut dc = setup(12, 3, 5);
        let mut trace =
            |vm: VmId, r: u64| Resources::splat(0.2 + 0.05 * ((vm.0 + r as u32) % 4) as f64);
        let mut policy = GrmpPolicy::new(GrmpConfig::default());
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, 5);

        let mut w = Writer::new();
        policy.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut twin = GrmpPolicy::new(GrmpConfig::default());
        twin.restore_state(&mut Reader::new(&bytes)).unwrap();
        let mut w2 = Writer::new();
        twin.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        for i in 0..12u32 {
            assert_eq!(
                policy.overlay.node(i).neighbors().collect::<Vec<_>>(),
                twin.overlay.node(i).neighbors().collect::<Vec<_>>()
            );
        }
    }
}
