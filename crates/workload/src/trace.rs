//! Materialized workload traces.
//!
//! A trace is a dense `(vm, round) → utilization-of-nominal` table. The
//! simulator pulls one column per round through the
//! [`glap_cluster::DemandSource`] trait. Keeping traces materialized (rather
//! than sampled on the fly) is what lets the harness drive *different
//! algorithms with the identical workload*, which the paper's methodology
//! requires.

use glap_cluster::{DemandSource, Resources, VmId};

/// A fully materialized utilization trace.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedTrace {
    n_vms: usize,
    rounds: usize,
    /// Row-major: `data[vm * rounds + round]`.
    data: Vec<Resources>,
}

impl MaterializedTrace {
    /// Allocates an all-zero trace.
    pub fn zeroed(n_vms: usize, rounds: usize) -> Self {
        MaterializedTrace {
            n_vms,
            rounds,
            data: vec![Resources::ZERO; n_vms * rounds],
        }
    }

    /// Builds a trace from a generator function.
    pub fn from_fn<F: FnMut(usize, usize) -> Resources>(
        n_vms: usize,
        rounds: usize,
        mut f: F,
    ) -> Self {
        let mut t = MaterializedTrace::zeroed(n_vms, rounds);
        for vm in 0..n_vms {
            for round in 0..rounds {
                t.set(vm, round, f(vm, round));
            }
        }
        t
    }

    /// Number of VMs covered.
    #[inline]
    pub fn n_vms(&self) -> usize {
        self.n_vms
    }

    /// Number of rounds covered.
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Utilization of `vm` at `round`. Rounds beyond the trace length wrap
    /// around (so warm-up phases can precede the measured day without
    /// requiring a longer trace).
    #[inline]
    pub fn get(&self, vm: usize, round: usize) -> Resources {
        debug_assert!(vm < self.n_vms);
        self.data[vm * self.rounds + round % self.rounds]
    }

    /// Sets one cell (values are clamped to `[0, 1]`).
    #[inline]
    pub fn set(&mut self, vm: usize, round: usize, value: Resources) {
        debug_assert!(vm < self.n_vms && round < self.rounds);
        self.data[vm * self.rounds + round] = value.clamp(0.0, 1.0);
    }

    /// The full series of one VM.
    pub fn series(&self, vm: usize) -> &[Resources] {
        &self.data[vm * self.rounds..(vm + 1) * self.rounds]
    }

    /// Appends all of `other`'s VM series after this trace's VMs. Both
    /// traces must cover the same number of rounds. Used to stitch a
    /// differently-distributed arrival population onto a base trace
    /// (workload distribution shift under churn).
    pub fn append_vms(&mut self, other: &MaterializedTrace) {
        assert_eq!(self.rounds, other.rounds, "round-count mismatch");
        self.data.extend_from_slice(&other.data);
        self.n_vms += other.n_vms;
    }

    /// Mean CPU utilization over all cells.
    pub fn mean_cpu(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|r| r.cpu()).sum::<f64>() / self.data.len() as f64
    }

    /// Mean memory utilization over all cells.
    pub fn mean_mem(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|r| r.mem()).sum::<f64>() / self.data.len() as f64
    }

    /// Lag-1 autocorrelation of one VM's CPU series — used to validate the
    /// generator's temporal structure.
    pub fn cpu_lag1_autocorr(&self, vm: usize) -> f64 {
        let s = self.series(vm);
        if s.len() < 3 {
            return 0.0;
        }
        let n = s.len();
        let mean = s.iter().map(|r| r.cpu()).sum::<f64>() / n as f64;
        let var: f64 = s.iter().map(|r| (r.cpu() - mean).powi(2)).sum();
        if var < 1e-12 {
            return 0.0;
        }
        let cov: f64 = (1..n)
            .map(|t| (s[t].cpu() - mean) * (s[t - 1].cpu() - mean))
            .sum();
        cov / var
    }
}

impl DemandSource for MaterializedTrace {
    fn demand(&mut self, vm: VmId, round: u64) -> Resources {
        self.get(vm.index(), round as usize)
    }
}

/// A trace that offsets rounds into an inner trace — used to pre-train GLAP
/// on 700 warm-up rounds and then replay the measured day from round 0 for
/// every algorithm identically.
#[derive(Debug, Clone)]
pub struct OffsetTrace<'a> {
    inner: &'a MaterializedTrace,
    offset: u64,
}

impl<'a> OffsetTrace<'a> {
    /// Wraps `inner`, shifting every queried round by `offset`.
    pub fn new(inner: &'a MaterializedTrace, offset: u64) -> Self {
        OffsetTrace { inner, offset }
    }
}

impl DemandSource for OffsetTrace<'_> {
    fn demand(&mut self, vm: VmId, round: u64) -> Resources {
        self.inner.get(vm.index(), (round + self.offset) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_fills_cells() {
        let t = MaterializedTrace::from_fn(2, 3, |vm, r| {
            Resources::splat((vm as f64 + r as f64) / 10.0)
        });
        assert_eq!(t.get(1, 2), Resources::splat(0.3));
        assert_eq!(t.series(0).len(), 3);
    }

    #[test]
    fn set_clamps_values() {
        let mut t = MaterializedTrace::zeroed(1, 1);
        t.set(0, 0, Resources::new(2.0, -1.0));
        assert_eq!(t.get(0, 0), Resources::new(1.0, 0.0));
    }

    #[test]
    fn rounds_wrap_around() {
        let t = MaterializedTrace::from_fn(1, 4, |_, r| Resources::splat(r as f64 / 10.0));
        assert_eq!(t.get(0, 5), t.get(0, 1));
    }

    #[test]
    fn demand_source_impl_reads_cells() {
        let mut t = MaterializedTrace::from_fn(2, 2, |vm, _| Resources::splat(vm as f64 / 2.0));
        assert_eq!(t.demand(VmId(1), 0), Resources::splat(0.5));
    }

    #[test]
    fn offset_trace_shifts_rounds() {
        let t = MaterializedTrace::from_fn(1, 10, |_, r| Resources::splat(r as f64 / 10.0));
        let mut o = OffsetTrace::new(&t, 3);
        assert_eq!(o.demand(VmId(0), 0), Resources::splat(0.3));
        assert_eq!(o.demand(VmId(0), 6), Resources::splat(0.9));
    }

    #[test]
    fn means_are_correct() {
        let t = MaterializedTrace::from_fn(2, 2, |_, _| Resources::new(0.25, 0.75));
        assert!((t.mean_cpu() - 0.25).abs() < 1e-12);
        assert!((t.mean_mem() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn append_vms_stitches_series() {
        let mut a = MaterializedTrace::from_fn(2, 3, |_, _| Resources::splat(0.1));
        let b = MaterializedTrace::from_fn(1, 3, |_, _| Resources::splat(0.9));
        a.append_vms(&b);
        assert_eq!(a.n_vms(), 3);
        assert_eq!(a.get(0, 0), Resources::splat(0.1));
        assert_eq!(a.get(2, 1), Resources::splat(0.9));
    }

    #[test]
    #[should_panic(expected = "round-count mismatch")]
    fn append_vms_rejects_mismatched_rounds() {
        let mut a = MaterializedTrace::zeroed(1, 3);
        let b = MaterializedTrace::zeroed(1, 4);
        a.append_vms(&b);
    }

    #[test]
    fn autocorr_of_constant_series_is_zero() {
        let t = MaterializedTrace::from_fn(1, 50, |_, _| Resources::splat(0.5));
        assert_eq!(t.cpu_lag1_autocorr(0), 0.0);
    }

    #[test]
    fn autocorr_of_smooth_series_is_high() {
        let t = MaterializedTrace::from_fn(1, 200, |_, r| {
            Resources::splat(0.5 + 0.4 * (r as f64 / 20.0).sin())
        });
        assert!(t.cpu_lag1_autocorr(0) > 0.9);
    }
}
