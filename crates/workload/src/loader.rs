//! CSV persistence for traces.
//!
//! Format: a header line `vm,round,cpu,mem` followed by one row per cell.
//! This is the interchange point for plugging *real* Google cluster trace
//! extracts into the harness: convert the task-usage table to this schema
//! (utilization fractions of the VM's request) and load it here.

use crate::trace::MaterializedTrace;
use glap_cluster::Resources;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a trace to CSV.
pub fn save_csv(trace: &MaterializedTrace, path: &Path) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "vm,round,cpu,mem")?;
    for vm in 0..trace.n_vms() {
        for (round, r) in trace.series(vm).iter().enumerate() {
            writeln!(out, "{vm},{round},{:.6},{:.6}", r.cpu(), r.mem())?;
        }
    }
    out.flush()
}

/// Reads a trace from CSV produced by [`save_csv`] (or an external
/// converter using the same schema). Cells absent from the file stay zero.
pub fn load_csv(path: &Path) -> io::Result<MaterializedTrace> {
    let reader = BufReader::new(File::open(path)?);
    let mut rows: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut max_vm = 0usize;
    let mut max_round = 0usize;
    let mut line = String::new();
    let mut lines = reader.lines();
    // Header.
    if let Some(h) = lines.next() {
        let h = h?;
        if h.trim() != "vm,round,cpu,mem" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected header: {h}"),
            ));
        }
    }
    for l in lines {
        line.clear();
        line.push_str(&l?);
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let parse_err =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}: {line}"));
        let vm: usize = parts
            .next()
            .ok_or_else(|| parse_err("vm"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("vm"))?;
        let round: usize = parts
            .next()
            .ok_or_else(|| parse_err("round"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("round"))?;
        let cpu: f64 = parts
            .next()
            .ok_or_else(|| parse_err("cpu"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("cpu"))?;
        let mem: f64 = parts
            .next()
            .ok_or_else(|| parse_err("mem"))?
            .trim()
            .parse()
            .map_err(|_| parse_err("mem"))?;
        max_vm = max_vm.max(vm);
        max_round = max_round.max(round);
        rows.push((vm, round, cpu, mem));
    }
    if rows.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "empty trace file",
        ));
    }
    let mut trace = MaterializedTrace::zeroed(max_vm + 1, max_round + 1);
    for (vm, round, cpu, mem) in rows {
        trace.set(vm, round, Resources::new(cpu, mem));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::google::GoogleLikeTraceGen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "glap_workload_test_{name}_{}.csv",
            std::process::id()
        ));
        p
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let gen = GoogleLikeTraceGen::default_stats();
        let mut rng = SmallRng::seed_from_u64(4);
        let t = gen.generate(4, 20, &mut rng);
        let path = tmp("roundtrip");
        save_csv(&t, &path).unwrap();
        let back = load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.n_vms(), t.n_vms());
        assert_eq!(back.rounds(), t.rounds());
        for vm in 0..4 {
            for r in 0..20 {
                assert!((back.get(vm, r).cpu() - t.get(vm, r).cpu()).abs() < 1e-5);
                assert!((back.get(vm, r).mem() - t.get(vm, r).mem()).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn load_rejects_bad_header() {
        let path = tmp("bad_header");
        std::fs::write(&path, "x,y,z\n1,2,3\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_rejects_empty_file() {
        let path = tmp("empty");
        std::fs::write(&path, "vm,round,cpu,mem\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn load_rejects_malformed_row() {
        let path = tmp("malformed");
        std::fs::write(&path, "vm,round,cpu,mem\n0,0,abc,0.5\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn sparse_rows_leave_zero_cells() {
        let path = tmp("sparse");
        std::fs::write(&path, "vm,round,cpu,mem\n1,2,0.5,0.25\n").unwrap();
        let t = load_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t.n_vms(), 2);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.get(0, 0), Resources::ZERO);
        assert!((t.get(1, 2).cpu() - 0.5).abs() < 1e-9);
    }
}
