//! # glap-workload — workload traces
//!
//! The demand side of the simulation. The paper replays Google cluster VM
//! traces \[12\]; that dataset is externally gated, so this crate provides a
//! synthetic generator ([`google::GoogleLikeTraceGen`]) matched to the
//! dataset's published statistics (low heavy-tailed CPU means, steadier
//! memory, strong autocorrelation, diurnal and bursty components) plus the
//! parametric patterns it is built from, a dense materialized trace type
//! implementing [`glap_cluster::DemandSource`], and CSV IO for plugging in
//! real trace extracts.
//!
//! ```
//! use glap_workload::GoogleLikeTraceGen;
//! use rand::SeedableRng;
//!
//! let gen = GoogleLikeTraceGen::default_stats();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let trace = gen.generate(100, 720, &mut rng); // 100 VMs, one day
//! assert!(trace.mean_cpu() < 0.5); // Google-like: low CPU usage
//! ```

pub mod dist;
pub mod google;
pub mod loader;
pub mod patterns;
pub mod trace;

pub use google::{GoogleLikeTraceGen, GoogleTraceConfig};
pub use loader::{load_csv, save_csv};
pub use patterns::Pattern;
pub use trace::{MaterializedTrace, OffsetTrace};
