//! Synthetic Google-cluster-like trace generation.
//!
//! The paper drives its simulation with the 2011 Google cluster usage
//! traces \[12\]. That dataset is an external multi-gigabyte download, so this
//! module synthesizes traces with the statistical properties reported for
//! it in the literature (Reiss et al., "Heterogeneity and dynamicity of
//! clouds at scale", SoCC 2012):
//!
//! * **CPU**: per-task mean usage is *low* relative to request — most tasks
//!   use well under 50% of their allocation — with a heavy low-mean tail.
//!   Modelled as a Kumaraswamy(2, 5) draw of each VM's long-run mean
//!   (≈ 0.29 average), scaled into `[floor, ceil]`.
//! * **Memory**: much steadier than CPU, with a lower mean relative to
//!   request (memory requests are padded defensively); modelled with
//!   Kumaraswamy(4, 3) means in a narrower range and a 2.5× smaller
//!   innovation σ. CPU is the binding, fluctuating resource — which is
//!   why the paper's SLAVO metric is defined on CPU saturation.
//! * **Temporal structure**: strong positive autocorrelation at the
//!   5-minute granularity → mean-reverting AR(1) with φ ≈ 0.9 at 2-minute
//!   rounds.
//! * **Diurnality and bursts**: a fraction of tasks follow a day cycle and
//!   exhibit short high-utilization bursts.
//!
//! The consolidation algorithms only ever observe per-round utilization
//! fractions, so matching these marginal/temporal statistics preserves the
//! behaviour the paper's evaluation exercises: fluctuating VM load that
//! punishes static thresholds and rewards prediction.

use crate::dist::{kumaraswamy, standard_normal};
use crate::patterns::Pattern;
use crate::trace::MaterializedTrace;
use glap_cluster::Resources;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunables of the Google-like generator. `Default` reproduces the
/// documented statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoogleTraceConfig {
    /// Kumaraswamy shape `a` for the per-VM CPU mean.
    pub cpu_mean_a: f64,
    /// Kumaraswamy shape `b` for the per-VM CPU mean.
    pub cpu_mean_b: f64,
    /// CPU mean is scaled into `[cpu_floor, cpu_ceil]`.
    pub cpu_floor: f64,
    /// Upper end of the CPU mean range.
    pub cpu_ceil: f64,
    /// Kumaraswamy shape `a` for the per-VM memory mean.
    pub mem_mean_a: f64,
    /// Kumaraswamy shape `b` for the per-VM memory mean.
    pub mem_mean_b: f64,
    /// Memory mean is scaled into `[mem_floor, mem_ceil]`.
    pub mem_floor: f64,
    /// Upper end of the memory mean range.
    pub mem_ceil: f64,
    /// AR(1) autocorrelation of the utilization process.
    pub phi: f64,
    /// AR(1) innovation standard deviation (CPU; memory uses 0.4×).
    pub sigma: f64,
    /// Fraction of VMs with a diurnal component.
    pub diurnal_fraction: f64,
    /// Number of distinct diurnal phase clusters. Real cluster workloads
    /// peak *together* (shared day/night cycles), so phases are drawn from
    /// a few clusters with small jitter rather than uniformly — this is
    /// what creates the correlated aggregate swings that stress
    /// threshold-based consolidation.
    pub phase_clusters: usize,
    /// Diurnal amplitude (utilization units).
    pub diurnal_amplitude: f64,
    /// Rounds per simulated day (720 × 2 min = 24 h).
    pub rounds_per_day: u64,
    /// Fraction of VMs that exhibit bursts.
    pub bursty_fraction: f64,
    /// Per-round probability a bursty VM starts a burst.
    pub burst_prob: f64,
    /// Mean burst length in rounds.
    pub mean_burst_len: f64,
    /// Burst CPU level added on top of the mean.
    pub burst_boost: f64,
}

impl Default for GoogleTraceConfig {
    fn default() -> Self {
        GoogleTraceConfig {
            cpu_mean_a: 2.0,
            cpu_mean_b: 5.0,
            cpu_floor: 0.05,
            cpu_ceil: 0.95,
            mem_mean_a: 4.0,
            mem_mean_b: 3.0,
            mem_floor: 0.10,
            mem_ceil: 0.60,
            phi: 0.9,
            sigma: 0.10,
            diurnal_fraction: 0.6,
            phase_clusters: 4,
            diurnal_amplitude: 0.30,
            rounds_per_day: 720,
            bursty_fraction: 0.3,
            burst_prob: 0.015,
            mean_burst_len: 6.0,
            burst_boost: 0.6,
        }
    }
}

/// Per-VM hidden parameters drawn once at generation time.
#[derive(Debug, Clone)]
struct VmParams {
    mean: Resources,
    diurnal_phase: Option<u64>,
    bursty: bool,
}

/// Generates materialized Google-like traces.
#[derive(Debug, Clone)]
pub struct GoogleLikeTraceGen {
    cfg: GoogleTraceConfig,
}

impl GoogleLikeTraceGen {
    /// Creates a generator with the given configuration.
    pub fn new(cfg: GoogleTraceConfig) -> Self {
        GoogleLikeTraceGen { cfg }
    }

    /// Creates a generator with the default (documented) statistics.
    pub fn default_stats() -> Self {
        GoogleLikeTraceGen {
            cfg: GoogleTraceConfig::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GoogleTraceConfig {
        &self.cfg
    }

    fn draw_params<R: Rng + ?Sized>(&self, rng: &mut R) -> VmParams {
        let c = &self.cfg;
        let cpu_mean =
            c.cpu_floor + kumaraswamy(rng, c.cpu_mean_a, c.cpu_mean_b) * (c.cpu_ceil - c.cpu_floor);
        let mem_mean =
            c.mem_floor + kumaraswamy(rng, c.mem_mean_a, c.mem_mean_b) * (c.mem_ceil - c.mem_floor);
        let diurnal_phase = if rng.gen::<f64>() < c.diurnal_fraction {
            // Pick a phase cluster, then jitter within ±5% of the day.
            // The first cluster is dominant (half the diurnal VMs): data
            // centers have one primary day/night cycle, and it is this
            // shared peak that makes aggregate demand swing.
            let clusters = c.phase_clusters.max(1) as u64;
            let cluster = if rng.gen::<f64>() < 0.5 {
                0
            } else {
                rng.gen_range(0..clusters)
            };
            let base = cluster * c.rounds_per_day / clusters;
            let jitter = rng.gen_range(0..=(c.rounds_per_day / 20).max(1));
            Some((base + jitter) % c.rounds_per_day)
        } else {
            None
        };
        let bursty = rng.gen::<f64>() < c.bursty_fraction;
        VmParams {
            mean: Resources::new(cpu_mean, mem_mean),
            diurnal_phase,
            bursty,
        }
    }

    /// Generates a trace of `rounds` rounds for `n_vms` VMs.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n_vms: usize,
        rounds: usize,
        rng: &mut R,
    ) -> MaterializedTrace {
        let c = self.cfg;
        let mut trace = MaterializedTrace::zeroed(n_vms, rounds);
        for vm in 0..n_vms {
            let params = self.draw_params(rng);
            let mut ar = Pattern::MeanReverting {
                mean: params.mean,
                phi: c.phi,
                sigma: c.sigma,
                state: params.mean,
            };
            let mut burst = params.bursty.then(|| Pattern::Bursty {
                low: Resources::ZERO,
                high: Resources::new(c.burst_boost, 0.25 * c.burst_boost),
                burst_prob: c.burst_prob,
                mean_burst_len: c.mean_burst_len,
                remaining_burst: 0,
            });
            for round in 0..rounds {
                let mut u = ar.sample(round as u64, rng);
                if let Some(phase) = params.diurnal_phase {
                    let angle = std::f64::consts::TAU
                        * ((round as u64 + phase) % c.rounds_per_day) as f64
                        / c.rounds_per_day as f64;
                    let wave = c.diurnal_amplitude * angle.sin();
                    u = Resources::new(u.cpu() + wave, u.mem() + 0.3 * wave);
                }
                if let Some(b) = burst.as_mut() {
                    u += b.sample(round as u64, rng);
                }
                // A final touch of measurement noise.
                let e = standard_normal(rng) * 0.01;
                u = Resources::new(u.cpu() + e, u.mem() + 0.5 * e);
                trace.set(vm, round, u.clamp(0.0, 1.0));
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn generate(n_vms: usize, rounds: usize, seed: u64) -> MaterializedTrace {
        let gen = GoogleLikeTraceGen::default_stats();
        let mut rng = SmallRng::seed_from_u64(seed);
        gen.generate(n_vms, rounds, &mut rng)
    }

    #[test]
    fn trace_dimensions_match_request() {
        let t = generate(10, 100, 1);
        assert_eq!(t.n_vms(), 10);
        assert_eq!(t.rounds(), 100);
    }

    #[test]
    fn all_values_in_unit_interval() {
        let t = generate(20, 200, 2);
        for vm in 0..20 {
            for r in t.series(vm) {
                assert!(r.cpu() >= 0.0 && r.cpu() <= 1.0);
                assert!(r.mem() >= 0.0 && r.mem() <= 1.0);
            }
        }
    }

    #[test]
    fn cpu_mean_is_low_like_google_traces() {
        let t = generate(300, 400, 3);
        let mean = t.mean_cpu();
        // Kumaraswamy(2,5) mean ≈ 0.345 scaled into [0.05, 0.95] ≈ 0.36;
        // bursts push it up slightly.
        assert!(mean > 0.2 && mean < 0.5, "CPU mean {mean}");
    }

    #[test]
    fn mem_mean_sits_in_configured_band() {
        let t = generate(300, 400, 4);
        let m = t.mean_mem();
        // Kumaraswamy(4,3) mean ≈ 0.57 scaled into [0.10, 0.60] ≈ 0.38.
        assert!(m > 0.25 && m < 0.5, "mem mean {m}");
    }

    #[test]
    fn series_are_strongly_autocorrelated() {
        let t = generate(50, 500, 5);
        let mean_rho: f64 = (0..50).map(|vm| t.cpu_lag1_autocorr(vm)).sum::<f64>() / 50.0;
        assert!(mean_rho > 0.5, "mean lag-1 autocorrelation {mean_rho}");
    }

    #[test]
    fn memory_is_steadier_than_cpu() {
        let t = generate(100, 400, 6);
        let var = |sel: fn(&Resources) -> f64| -> f64 {
            let mut total = 0.0;
            for vm in 0..100 {
                let s = t.series(vm);
                let m = s.iter().map(&sel).sum::<f64>() / s.len() as f64;
                total += s.iter().map(|r| (sel(r) - m).powi(2)).sum::<f64>() / s.len() as f64;
            }
            total / 100.0
        };
        let cpu_var = var(|r| r.cpu());
        let mem_var = var(|r| r.mem());
        assert!(mem_var < cpu_var, "mem var {mem_var} vs cpu var {cpu_var}");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = generate(5, 50, 9);
        let b = generate(5, 50, 9);
        assert_eq!(a, b);
        let c = generate(5, 50, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn vms_are_heterogeneous() {
        let t = generate(50, 200, 11);
        let means: Vec<f64> = (0..50)
            .map(|vm| t.series(vm).iter().map(|r| r.cpu()).sum::<f64>() / 200.0)
            .collect();
        let lo = means.iter().cloned().fold(f64::MAX, f64::min);
        let hi = means.iter().cloned().fold(f64::MIN, f64::max);
        assert!(hi - lo > 0.15, "per-VM mean spread {lo}..{hi} too narrow");
    }
}
