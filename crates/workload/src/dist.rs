//! Small, self-contained samplers for the distributions the trace
//! generator needs. Implemented in-repo (rather than pulling `rand_distr`)
//! to keep the dependency set to the approved list; each sampler is exact
//! or a standard textbook method.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 exactly (ln(0)).
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples a Kumaraswamy(a, b) variate on `[0, 1]` by inverse transform:
/// `x = (1 − (1 − u)^{1/b})^{1/a}`.
///
/// Kumaraswamy closely mimics the Beta distribution with the same shape
/// parameters and has a closed-form inverse CDF, making it ideal for
/// drawing per-VM long-run utilization means (low-mean heavy-tailed for
/// CPU, higher and tighter for memory).
pub fn kumaraswamy<R: Rng + ?Sized>(rng: &mut R, a: f64, b: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0);
    let u: f64 = rng.gen();
    (1.0 - (1.0 - u).powf(1.0 / b)).powf(1.0 / a)
}

/// Mean of Kumaraswamy(a, b): `b · B(1 + 1/a, b)` where `B` is the Beta
/// function — used by tests to pin generator statistics.
pub fn kumaraswamy_mean(a: f64, b: f64) -> f64 {
    b * beta_fn(1.0 + 1.0 / a, b)
}

/// The Beta function via `ln Γ`.
fn beta_fn(x: f64, y: f64) -> f64 {
    (ln_gamma(x) + ln_gamma(y) - ln_gamma(x + y)).exp()
}

/// Lanczos approximation of `ln Γ(x)` (g = 7, n = 9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (std::f64::consts::TAU).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Samples a geometric duration with success probability `p` (support
/// `1, 2, …`) — burst lengths.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln())
        .ceil()
        .max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn kumaraswamy_stays_in_unit_interval() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = kumaraswamy(&mut r, 2.0, 5.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn kumaraswamy_empirical_mean_matches_formula() {
        let mut r = rng();
        let (a, b) = (2.0, 5.0);
        let n = 30_000;
        let mean = (0..n).map(|_| kumaraswamy(&mut r, a, b)).sum::<f64>() / n as f64;
        let expect = kumaraswamy_mean(a, b);
        assert!((mean - expect).abs() < 0.01, "mean {mean} expect {expect}");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24
        assert!(ln_gamma(1.0).abs() < 1e-9);
        assert!(ln_gamma(2.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9);
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_is_one_over_p() {
        let mut r = rng();
        let p = 0.25;
        let n = 20_000;
        let mean = (0..n).map(|_| geometric(&mut r, p) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / p).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn geometric_minimum_is_one() {
        let mut r = rng();
        for _ in 0..500 {
            assert!(geometric(&mut r, 0.9) >= 1);
        }
    }
}
