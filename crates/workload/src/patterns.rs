//! Parametric per-VM workload patterns.
//!
//! These are the building blocks of the Google-like generator and are also
//! exposed directly so examples and ablations can stress specific dynamics
//! (the paper's future work calls out bursty patterns explicitly).

use crate::dist::{geometric, standard_normal};
use glap_cluster::Resources;
use rand::Rng;

/// A stateful generator of one VM's utilization series.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// Constant demand with small white noise.
    Stable {
        /// Baseline utilization per resource.
        level: Resources,
        /// White-noise standard deviation.
        noise: f64,
    },
    /// Mean-reverting AR(1) process: `u' = m + φ(u − m) + σ ε`.
    MeanReverting {
        /// Long-run mean per resource.
        mean: Resources,
        /// Autocorrelation φ ∈ [0, 1).
        phi: f64,
        /// Innovation standard deviation σ.
        sigma: f64,
        /// Current value (state).
        state: Resources,
    },
    /// Diurnal sinusoid plus AR(1) noise: models the day/night cycle of
    /// interactive services.
    Diurnal {
        /// Mid-line utilization per resource.
        base: Resources,
        /// Peak-to-midline amplitude.
        amplitude: f64,
        /// Rounds per full day.
        period: u64,
        /// Phase offset in rounds.
        phase: u64,
        /// Additional white-noise σ.
        noise: f64,
    },
    /// Alternates between a low baseline and geometric-length bursts at a
    /// high level — the adversarial case for threshold-based consolidation.
    Bursty {
        /// Baseline utilization.
        low: Resources,
        /// Burst utilization.
        high: Resources,
        /// Per-round probability of entering a burst.
        burst_prob: f64,
        /// Expected burst length in rounds (geometric parameter 1/len).
        mean_burst_len: f64,
        /// Rounds left in the current burst (state).
        remaining_burst: u64,
    },
    /// On/off square wave (batch jobs).
    OnOff {
        /// Utilization while on.
        on: Resources,
        /// Utilization while off.
        off: Resources,
        /// Rounds on per cycle.
        on_rounds: u64,
        /// Rounds off per cycle.
        off_rounds: u64,
    },
}

impl Pattern {
    /// Produces the utilization at `round`, advancing internal state.
    /// Values are clamped to `[0, 1]` per resource.
    pub fn sample<R: Rng + ?Sized>(&mut self, round: u64, rng: &mut R) -> Resources {
        let v = match self {
            Pattern::Stable { level, noise } => {
                let e = standard_normal(rng) * *noise;
                *level + Resources::splat(e)
            }
            Pattern::MeanReverting {
                mean,
                phi,
                sigma,
                state,
            } => {
                let e_cpu = standard_normal(rng) * *sigma;
                let e_mem = standard_normal(rng) * *sigma * 0.4; // memory is steadier
                let next = Resources::new(
                    mean.cpu() + *phi * (state.cpu() - mean.cpu()) + e_cpu,
                    mean.mem() + *phi * (state.mem() - mean.mem()) + e_mem,
                )
                .clamp(0.0, 1.0);
                *state = next;
                next
            }
            Pattern::Diurnal {
                base,
                amplitude,
                period,
                phase,
                noise,
            } => {
                let angle =
                    std::f64::consts::TAU * ((round + *phase) % *period) as f64 / *period as f64;
                let wave = *amplitude * angle.sin();
                let e = standard_normal(rng) * *noise;
                Resources::new(base.cpu() + wave + e, base.mem() + 0.3 * wave + 0.3 * e)
            }
            Pattern::Bursty {
                low,
                high,
                burst_prob,
                mean_burst_len,
                remaining_burst,
            } => {
                if *remaining_burst > 0 {
                    *remaining_burst -= 1;
                    *high
                } else if rng.gen::<f64>() < *burst_prob {
                    *remaining_burst = geometric(rng, 1.0 / mean_burst_len.max(1.0));
                    *high
                } else {
                    *low
                }
            }
            Pattern::OnOff {
                on,
                off,
                on_rounds,
                off_rounds,
            } => {
                let cycle = *on_rounds + *off_rounds;
                if cycle == 0 || round % cycle < *on_rounds {
                    *on
                } else {
                    *off
                }
            }
        };
        v.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    #[test]
    fn stable_stays_near_level() {
        let mut p = Pattern::Stable {
            level: Resources::splat(0.5),
            noise: 0.02,
        };
        let mut r = rng();
        let mean = (0..500).map(|t| p.sample(t, &mut r).cpu()).sum::<f64>() / 500.0;
        assert!((mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn samples_always_clamped() {
        let mut p = Pattern::Stable {
            level: Resources::splat(0.95),
            noise: 0.5,
        };
        let mut r = rng();
        for t in 0..500 {
            let v = p.sample(t, &mut r);
            assert!(v.cpu() >= 0.0 && v.cpu() <= 1.0);
            assert!(v.mem() >= 0.0 && v.mem() <= 1.0);
        }
    }

    #[test]
    fn mean_reverting_tracks_mean_and_autocorrelates() {
        let mut p = Pattern::MeanReverting {
            mean: Resources::splat(0.3),
            phi: 0.9,
            sigma: 0.05,
            state: Resources::splat(0.3),
        };
        let mut r = rng();
        let xs: Vec<f64> = (0..3000).map(|t| p.sample(t, &mut r).cpu()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.3).abs() < 0.05, "mean {mean}");
        // Empirical lag-1 autocorrelation should approximate φ.
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
        let cov: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho = cov / var;
        assert!(rho > 0.7, "lag-1 autocorr {rho}");
    }

    #[test]
    fn diurnal_peaks_once_per_period() {
        let mut p = Pattern::Diurnal {
            base: Resources::splat(0.4),
            amplitude: 0.3,
            period: 720,
            phase: 0,
            noise: 0.0,
        };
        let mut r = rng();
        let xs: Vec<f64> = (0..720).map(|t| p.sample(t, &mut r).cpu()).collect();
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 0.7).abs() < 1e-6);
        assert!((min - 0.1).abs() < 1e-6);
    }

    #[test]
    fn bursty_spends_most_time_low() {
        let mut p = Pattern::Bursty {
            low: Resources::splat(0.1),
            high: Resources::splat(0.9),
            burst_prob: 0.02,
            mean_burst_len: 5.0,
            remaining_burst: 0,
        };
        let mut r = rng();
        let n = 5000;
        let high = (0..n).filter(|&t| p.sample(t, &mut r).cpu() > 0.5).count();
        let frac = high as f64 / n as f64;
        // Expected occupancy ≈ p·len / (1 + p·len) ≈ 0.09
        assert!(frac > 0.02 && frac < 0.25, "burst occupancy {frac}");
    }

    #[test]
    fn on_off_alternates_exactly() {
        let mut p = Pattern::OnOff {
            on: Resources::splat(0.8),
            off: Resources::splat(0.1),
            on_rounds: 3,
            off_rounds: 2,
        };
        let mut r = rng();
        let xs: Vec<f64> = (0..10).map(|t| p.sample(t, &mut r).cpu()).collect();
        assert_eq!(xs, vec![0.8, 0.8, 0.8, 0.1, 0.1, 0.8, 0.8, 0.8, 0.1, 0.1]);
    }
}
